//! The `Sync` scoring core behind [`crate::ServeEngine`] and the sharded
//! gateway: one contiguous window of the frozen item catalog, plus
//! everything needed to turn pre-encoded user representations into
//! hardened top-k answers.
//!
//! # Why this split exists
//!
//! The model half of serving (`Box<dyn SeqRecModel>`) is *not* `Sync` —
//! parameters live behind `Rc<RefCell<…>>` for the autograd tape — so an
//! engine can never be fanned out across `wr-runtime` pool threads. The
//! catalog half is the opposite: a frozen `Arc`'d matrix and a handful of
//! `Send + Sync` hooks (injector, sleeper, telemetry). [`CatalogShard`]
//! is that second half on its own: encode once on the caller thread, then
//! hand the `users` tensor to any number of shards concurrently.
//!
//! # Catalog windows
//!
//! A shard owns rows `[item_offset, item_offset + n_items)` of the global
//! catalog. Scoring a window is bit-identical to the corresponding
//! columns of the full-catalog gemm (`wr_tensor::matmul` accumulates each
//! output element over the inner dimension only, independent of how many
//! columns are computed), so per-shard top-k lists merge *exactly* into
//! the single-engine answer via [`crate::merge_top_k`] — the property the
//! gateway's differential suite pins. All public inputs and outputs use
//! global item ids: seen-item filters are remapped into the window on the
//! way in, recommendations are remapped back on the way out.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::topk::batch_top_k_shifted;
use crate::{Request, ResilienceConfig, Response, Scorer, ServeConfig, ServeError};
use wr_ann::{IvfIndex, SearchStats};
use wr_eval::{top_k_filtered, ScoredItem};
use wr_fault::{no_faults, SharedInjector, Sleeper, ThreadSleeper};
use wr_obs::{DeadlineBudget, Telemetry, TraceContext};
use wr_tensor::Tensor;

/// Rows of `items` containing any non-finite value — these are
/// quarantined out of every candidate set.
pub(crate) fn non_finite_rows(items: &Tensor) -> Vec<usize> {
    (0..items.rows())
        .filter(|&r| items.row(r).iter().any(|v| !v.is_finite()))
        .collect()
}

/// A score that must disqualify its row from the fast path: NaN poisons
/// every comparison, +Inf pins the top slot. The shard's own quarantine
/// mask (`NEG_INFINITY`) is *not* poison — it deliberately sorts last.
pub(crate) fn is_poisoned(v: f32) -> bool {
    v.is_nan() || (v.is_infinite() && v > 0.0)
}

/// Copy rows `range` of `full: [n, d]` into an owned `[range.len(), d]`
/// tensor. The copy preserves bit patterns (including any non-finite
/// values a damaged cache carries into quarantine detection).
fn slice_rows(full: &Tensor, range: &Range<usize>) -> Tensor {
    assert!(full.rank() == 2, "slice_rows expects [n_items, d]");
    assert!(
        range.start <= range.end && range.end <= full.rows(),
        "catalog window {range:?} out of bounds for {} rows",
        full.rows()
    );
    let d = full.cols();
    let data = full.data()[range.start * d..range.end * d].to_vec();
    Tensor::from_vec(data, &[range.end - range.start, d])
}

/// One catalog window plus the degraded-mode machinery to serve it:
/// quarantine of non-finite rows, fault-injection hooks, bounded retry
/// with per-request isolation, optional IVF retrieval, write-only
/// telemetry. Everything inside is `Send + Sync`, so shards are fanned
/// out across the `wr-runtime` pool by the gateway while the (non-Sync)
/// model stays on the caller thread.
///
/// All methods take *pre-encoded* user representations (`users: [b, d]`,
/// one row per request, produced by `SeqRecModel::user_representations`
/// on the caller thread) and answer in **global** item ids.
pub struct CatalogShard {
    cache: crate::EmbeddingCache,
    /// Global id of this window's first row.
    item_offset: usize,
    /// Local (window-relative) indices of non-finite cache rows; masked
    /// to `-inf` in every score row so they can never be recommended.
    quarantined: Vec<usize>,
    k: usize,
    filter_seen: bool,
    resilience: ResilienceConfig,
    /// Fault-injection hook on the hot path ([`wr_fault::NoFaults`] in
    /// production). Consulted for induced panics and score poisoning; the
    /// recovery machinery below must absorb whatever it injects.
    injector: SharedInjector,
    /// How batch-retry backoff waits ([`ThreadSleeper`] in production,
    /// [`wr_fault::NoSleep`] in tests so nothing ever blocks).
    sleeper: Arc<dyn Sleeper>,
    /// Optional write-only telemetry (quarantine/retry/ANN counters).
    telemetry: Option<Telemetry>,
    /// Candidate-retrieval strategy; [`Scorer::Ivf`] requires an index.
    scorer: Scorer,
    index: Option<Arc<IvfIndex>>,
}

impl CatalogShard {
    /// Wrap an existing full-catalog cache (window offset 0). Replicated
    /// deployments clone one cache into every shard — handle clones, the
    /// underlying matrix is shared.
    pub fn from_cache(cache: crate::EmbeddingCache, cfg: &ServeConfig) -> Self {
        let quarantined = non_finite_rows(cache.items());
        CatalogShard {
            cache,
            item_offset: 0,
            quarantined,
            k: cfg.k,
            filter_seen: cfg.filter_seen,
            resilience: ResilienceConfig::default(),
            injector: no_faults(),
            sleeper: Arc::new(ThreadSleeper),
            telemetry: None,
            scorer: Scorer::Exact,
            index: None,
        }
    }

    /// Snapshot rows `range` of the global catalog into a shard window.
    pub fn from_window(full_items: &Tensor, range: Range<usize>, cfg: &ServeConfig) -> Self {
        let window = slice_rows(full_items, &range);
        let mut shard = CatalogShard::from_cache(crate::EmbeddingCache::new(window), cfg);
        shard.item_offset = range.start;
        shard
    }

    /// Re-snapshot this shard's window from `full_items` through
    /// `injector`'s `cache.load` site — indexed by **global** row id, so
    /// a given fault plan damages the same catalog rows no matter how
    /// the catalog is sharded — then recompute the quarantine set and arm
    /// the injector for the hot-path sites (`serve.row`, `serve.score`).
    /// Other knobs (resilience, sleeper, telemetry, scorer) are kept.
    pub fn rearm(&mut self, full_items: &Tensor, injector: SharedInjector) {
        let range = self.item_offset..self.item_offset + self.cache.n_items();
        let mut window = slice_rows(full_items, &range);
        for r in 0..window.rows() {
            injector.poison("cache.load", (range.start + r) as u64, window.row_mut(r));
        }
        self.quarantined = non_finite_rows(&window);
        self.cache = crate::EmbeddingCache::new(window);
        self.injector = injector;
    }

    /// A serving replica of this shard: the same catalog window through
    /// handle clones of the same cache and ANN index (no embedding
    /// copies), the same quarantine set, config, injector, sleeper, and
    /// telemetry. Same window + same frozen cache ⇒ every replica scores
    /// bit-identically to its primary — the invariant that makes replica
    /// failover and hedging answer-preserving.
    pub fn replica(&self) -> CatalogShard {
        CatalogShard {
            cache: self.cache.clone(),
            item_offset: self.item_offset,
            quarantined: self.quarantined.clone(),
            k: self.k,
            filter_seen: self.filter_seen,
            resilience: self.resilience,
            injector: self.injector.clone(),
            sleeper: self.sleeper.clone(),
            telemetry: self.telemetry.clone(),
            scorer: self.scorer,
            index: self.index.clone(),
        }
    }

    /// Replace this shard's hot-path injector *without* re-snapshotting
    /// the cache. This is the "replica process died" arming: injectors
    /// like [`wr_fault::KillAfter`] only panic, never poison, so the
    /// cache (and therefore every surviving answer) stays bit-identical
    /// to the healthy replicas'. For data-damage chaos use
    /// [`CatalogShard::rearm`], which re-snapshots through `cache.load`.
    pub fn set_injector(&mut self, injector: SharedInjector) {
        self.injector = injector;
    }

    /// Override degraded-mode knobs (builder-style). `max_queue_depth`
    /// is this shard's per-call row bound for
    /// [`CatalogShard::try_serve_encoded`] — the gateway's per-shard
    /// backpressure valve.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Replace the backoff sleeper (builder-style). Tests inject
    /// [`wr_fault::NoSleep`] so retry storms never block the suite.
    pub fn with_sleeper(mut self, sleeper: Arc<dyn Sleeper>) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// Attach write-only telemetry (builder-style): `serve.retries`,
    /// `serve.quarantined_rows`, and `serve.ann.*` counters. Counter
    /// registration is the owner's job ([`crate::ServeEngine`] and the
    /// gateway both register eagerly at attach time).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Switch this shard to IVF retrieval. The index must have been built
    /// over this shard's *window* (local row ids) — shape disagreement is
    /// a construction bug, checked here rather than discovered per query.
    pub fn set_ann(&mut self, index: Arc<IvfIndex>, nprobe: usize) {
        assert_eq!(
            (index.n_items(), index.dim()),
            (self.cache.n_items(), self.cache.dim()),
            "IVF index shape disagrees with the shard window"
        );
        self.scorer = Scorer::Ivf { nprobe };
        self.index = Some(index);
    }

    pub fn cache(&self) -> &crate::EmbeddingCache {
        &self.cache
    }

    /// Global id of this window's first row.
    pub fn item_offset(&self) -> usize {
        self.item_offset
    }

    /// Rows in this window.
    pub fn n_items(&self) -> usize {
        self.cache.n_items()
    }

    /// This window as a global-id range.
    pub fn item_range(&self) -> Range<usize> {
        self.item_offset..self.item_offset + self.cache.n_items()
    }

    /// Local (window-relative) indices quarantined at cache load.
    pub fn quarantined_items(&self) -> &[usize] {
        &self.quarantined
    }

    pub fn scorer(&self) -> Scorer {
        self.scorer
    }

    pub fn ann_index(&self) -> Option<&Arc<IvfIndex>> {
        self.index.as_ref()
    }

    pub fn resilience(&self) -> ResilienceConfig {
        self.resilience
    }

    pub(crate) fn sleeper(&self) -> &Arc<dyn Sleeper> {
        &self.sleeper
    }

    /// Flight-recorder hook: only fires when telemetry is attached, and
    /// only on degraded-mode paths — the healthy hot path never reads the
    /// clock for it.
    fn flight_note(&self, kind: &'static str, site: &str, ctx: TraceContext, req: u64, batch: u64) {
        if let Some(tel) = &self.telemetry {
            tel.flight.note(kind, site, ctx, req, batch, tel.clock.now_ns());
        }
    }

    /// Score one micro-batch of pre-encoded users. May panic (induced
    /// faults or genuine bugs); the caller contains it. `attempt` feeds
    /// the injector so transient faults clear on retry.
    pub fn process_encoded(&self, slice: &[Request], users: &Tensor, attempt: u32) -> Vec<Response> {
        self.process_encoded_ctx(slice, users, attempt, TraceContext::UNTRACED)
    }

    /// [`CatalogShard::process_encoded`] under a trace identity: the
    /// scoring is bit-identical (the context is write-only), but injected
    /// score poisoning is noted in the flight recorder under `ctx`.
    pub fn process_encoded_ctx(
        &self,
        slice: &[Request],
        users: &Tensor,
        attempt: u32,
        ctx: TraceContext,
    ) -> Vec<Response> {
        for req in slice {
            self.injector.maybe_panic("serve.row", req.id, attempt);
        }
        if let Scorer::Ivf { nprobe } = self.scorer {
            return self.process_encoded_ann(slice, users, nprobe, ctx);
        }
        let mut scores = users.matmul(self.cache.items_t());
        for (r, req) in slice.iter().enumerate() {
            let poisoned = self.injector.poison("serve.score", req.id, scores.row_mut(r));
            if poisoned > 0 {
                self.flight_note("fault", "serve.score", ctx, req.id, u64::MAX);
            }
        }
        self.extract_top_k(slice, scores, ctx)
    }

    /// [`CatalogShard::process_encoded`] with containment: panic →
    /// bounded retry with backoff → per-request isolation (each request
    /// re-scored alone from its own `users` row, so a poisoned request
    /// fails with an empty item list while its batch peers get their
    /// normal, bit-identical answers).
    pub fn serve_encoded(&self, slice: &[Request], users: &Tensor) -> Vec<Response> {
        self.serve_encoded_ctx(slice, users, TraceContext::UNTRACED)
    }

    /// [`CatalogShard::serve_encoded`] under a trace identity: retries
    /// and permanent (isolation-defeating) panics are noted in the flight
    /// recorder under `ctx`, and a permanent panic triggers a sealed
    /// flight dump when one is armed.
    pub fn serve_encoded_ctx(
        &self,
        slice: &[Request],
        users: &Tensor,
        ctx: TraceContext,
    ) -> Vec<Response> {
        let policy = self.resilience.retry;
        for attempt in 0..policy.max_attempts {
            match catch_unwind(AssertUnwindSafe(|| {
                self.process_encoded_ctx(slice, users, attempt, ctx)
            })) {
                Ok(responses) => return responses,
                Err(_payload) => {
                    if let Some(tel) = &self.telemetry {
                        tel.registry.counter("serve.retries").inc();
                    }
                    self.flight_note("retry", "serve.row", ctx, u64::MAX, u64::MAX);
                    if attempt + 1 < policy.max_attempts {
                        self.sleeper.sleep_ns(policy.delay_ns(attempt));
                    }
                }
            }
        }
        // The batch keeps dying: isolate requests. Single-row scoring is
        // bit-identical to batched scoring (row independence — the
        // differential suite's contract), so survivors' answers match
        // what the healthy batch would have produced.
        let mut permanent = false;
        let out: Vec<Response> = slice
            .iter()
            .enumerate()
            .map(|(r, req)| {
                let row = Tensor::from_vec(users.row(r).to_vec(), &[1, users.cols()]);
                let one = std::slice::from_ref(req);
                match catch_unwind(AssertUnwindSafe(|| {
                    self.process_encoded_ctx(one, &row, policy.max_attempts, ctx)
                })) {
                    Ok(mut responses) => responses.pop().unwrap_or(Response {
                        id: req.id,
                        items: Vec::new(),
                    }),
                    Err(_) => {
                        // The victim: this request panics even alone, past
                        // the retry budget — name it in the flight ring.
                        self.flight_note("panic", "serve.row", ctx, req.id, u64::MAX);
                        permanent = true;
                        Response {
                            id: req.id,
                            items: Vec::new(),
                        }
                    }
                }
            })
            .collect();
        if permanent {
            if let Some(tel) = &self.telemetry {
                tel.flight.trigger("permanent-panic");
            }
        }
        out
    }

    /// [`CatalogShard::serve_encoded`] behind per-shard backpressure:
    /// calls carrying more than `resilience.max_queue_depth` rows are
    /// rejected (typed, counted) so one slow shard sheds load instead of
    /// queuing unbounded work. The gateway degrades the affected
    /// responses rather than failing the whole request.
    pub fn try_serve_encoded(
        &self,
        slice: &[Request],
        users: &Tensor,
    ) -> Result<Vec<Response>, ServeError> {
        self.try_serve_encoded_ctx(slice, users, TraceContext::UNTRACED)
    }

    /// [`CatalogShard::try_serve_encoded`] under a trace identity;
    /// backpressure rejections are noted in the flight recorder.
    pub fn try_serve_encoded_ctx(
        &self,
        slice: &[Request],
        users: &Tensor,
        ctx: TraceContext,
    ) -> Result<Vec<Response>, ServeError> {
        let limit = self.resilience.max_queue_depth;
        if slice.len() > limit {
            if let Some(tel) = &self.telemetry {
                tel.registry.counter("serve.rejected_overload").inc();
            }
            self.flight_note("overload", "serve.queue", ctx, u64::MAX, u64::MAX);
            return Err(ServeError::Overloaded {
                depth: slice.len(),
                limit,
            });
        }
        Ok(self.serve_encoded_ctx(slice, users, ctx))
    }

    /// The *strict* replica-dispatch path: backpressure and deadline are
    /// checked up front, panics are retried up to the policy bound, and a
    /// micro-batch that still dies surfaces as [`ServeError::Panicked`]
    /// instead of being absorbed into per-request isolation. A
    /// replica-aware caller wants the typed failure — a sibling replica
    /// over the same window answers bit-identically, so failing over
    /// beats degrading. (The absorbing path, [`serve_encoded_ctx`], stays
    /// the last line of defense when no replica is left.)
    ///
    /// `now_ns` is the caller's reading of its `wr_obs::Clock` — the
    /// shard itself never reads a clock, so deadline behavior is a pure
    /// function of the caller's virtual timeline.
    ///
    /// [`serve_encoded_ctx`]: CatalogShard::serve_encoded_ctx
    pub fn try_serve_replica(
        &self,
        slice: &[Request],
        users: &Tensor,
        ctx: TraceContext,
        deadline: DeadlineBudget,
        now_ns: u64,
    ) -> Result<Vec<Response>, ServeError> {
        let limit = self.resilience.max_queue_depth;
        if slice.len() > limit {
            if let Some(tel) = &self.telemetry {
                tel.registry.counter("serve.rejected_overload").inc();
            }
            self.flight_note("overload", "serve.queue", ctx, u64::MAX, u64::MAX);
            return Err(ServeError::Overloaded {
                depth: slice.len(),
                limit,
            });
        }
        if deadline.expired(now_ns) {
            self.flight_note("deadline", "serve.queue", ctx, u64::MAX, u64::MAX);
            return Err(ServeError::DeadlineExceeded {
                elapsed_ns: deadline.elapsed_ns(now_ns),
                budget_ns: deadline.budget_ns,
            });
        }
        let policy = self.resilience.retry;
        for attempt in 0..policy.max_attempts {
            match catch_unwind(AssertUnwindSafe(|| {
                self.process_encoded_ctx(slice, users, attempt, ctx)
            })) {
                Ok(responses) => return Ok(responses),
                Err(_payload) => {
                    if let Some(tel) = &self.telemetry {
                        tel.registry.counter("serve.retries").inc();
                    }
                    self.flight_note("retry", "serve.row", ctx, u64::MAX, u64::MAX);
                    if attempt + 1 < policy.max_attempts {
                        self.sleeper.sleep_ns(policy.delay_ns(attempt));
                    }
                }
            }
        }
        Err(ServeError::Panicked {
            attempts: policy.max_attempts,
        })
    }

    /// Single pre-encoded query without fault hooks (the interactive
    /// path): honors the active scorer, filters seen items, answers in
    /// global ids.
    pub fn recommend_encoded(&self, history: &[usize], users: &Tensor) -> Vec<ScoredItem> {
        if let Scorer::Ivf { nprobe } = self.scorer {
            let req = Request {
                id: 0,
                history: history.to_vec(),
            };
            return self
                .process_encoded_ann(std::slice::from_ref(&req), users, nprobe, TraceContext::UNTRACED)
                .pop()
                .map(|r| r.items)
                .unwrap_or_default();
        }
        let scores = users.matmul(self.cache.items_t());
        let seen: &[usize] = if self.filter_seen { history } else { &[] };
        if self.item_offset == 0 {
            return top_k_filtered(scores.row(0), self.k, seen);
        }
        let local_seen: Vec<usize> = seen
            .iter()
            .filter_map(|&h| h.checked_sub(self.item_offset))
            .collect();
        let mut items = top_k_filtered(scores.row(0), self.k, &local_seen);
        for s in &mut items {
            s.item += self.item_offset;
        }
        items
    }

    /// Score one micro-batch through the IVF index: probe per query in
    /// parallel (one pool task per request row, stitched in order — the
    /// usual thread-count-independent shape). Seen-item filtering and the
    /// item quarantine are applied as candidate exclusions, remapped into
    /// the window.
    fn process_encoded_ann(
        &self,
        slice: &[Request],
        users: &Tensor,
        nprobe: usize,
        ctx: TraceContext,
    ) -> Vec<Response> {
        let Some(index) = self.index.as_ref() else {
            // Scorer::Ivf without an index — set_ann enforces the
            // pairing, but a broken caller gets dense answers, not a
            // dead batch.
            let mut scores = users.matmul(self.cache.items_t());
            for (r, req) in slice.iter().enumerate() {
                self.injector.poison("serve.score", req.id, scores.row_mut(r));
            }
            return self.extract_top_k(slice, scores, ctx);
        };
        let (k, filter_seen, offset) = (self.k, self.filter_seen, self.item_offset);
        let n_local = self.cache.n_items();
        let quarantined = &self.quarantined;
        let index_ref: &IvfIndex = index;
        let users_ref = users;
        let results: Vec<(Vec<ScoredItem>, SearchStats)> =
            wr_runtime::parallel_map(slice.len(), 1, |r| {
                let mut excluded: Vec<usize> = Vec::new();
                if filter_seen {
                    excluded.extend(slice[r].history.iter().filter_map(|&h| {
                        let local = h.checked_sub(offset)?;
                        (local < n_local).then_some(local)
                    }));
                }
                excluded.extend_from_slice(quarantined);
                index_ref.search_traced(users_ref.row(r), k, nprobe, &excluded, ctx.trace_id)
            });
        if let Some(tel) = &self.telemetry {
            let (lists, rows) = results.iter().fold((0u64, 0u64), |(l, s), (_, st)| {
                (l + st.lists_probed as u64, s + st.rows_scanned as u64)
            });
            tel.registry.counter("serve.ann.lists_probed").add(lists);
            tel.registry.counter("serve.ann.rows_scanned").add(rows);
        }
        slice
            .iter()
            .zip(results)
            .map(|(req, (mut items, _))| {
                for s in &mut items {
                    s.item += offset;
                }
                Response { id: req.id, items }
            })
            .collect()
    }

    /// Top-k extraction with quarantine: masked items sort last, poisoned
    /// rows take the slow non-finite-aware path. Outputs global ids.
    /// Rows that fall back to the quarantine path are noted in the flight
    /// recorder under `ctx`.
    fn extract_top_k(&self, slice: &[Request], mut scores: Tensor, ctx: TraceContext) -> Vec<Response> {
        // Quarantined items (non-finite cache rows) are masked to -inf
        // *first*: one bad item column must not poison whole rows.
        if !self.quarantined.is_empty() {
            for r in 0..slice.len() {
                let row = scores.row_mut(r);
                for &c in &self.quarantined {
                    if let Some(cell) = row.get_mut(c) {
                        *cell = f32::NEG_INFINITY;
                    }
                }
            }
        }
        let poisoned: Vec<bool> = (0..slice.len())
            .map(|r| scores.row(r).iter().copied().any(is_poisoned))
            .collect();
        let seen: Vec<&[usize]> = slice
            .iter()
            .map(|r| {
                if self.filter_seen {
                    r.history.as_slice()
                } else {
                    &[]
                }
            })
            .collect();
        let lists = batch_top_k_shifted(&scores, self.k, &seen, self.item_offset);
        let n_poisoned = poisoned.iter().filter(|&&p| p).count();
        if n_poisoned > 0 {
            if let Some(tel) = &self.telemetry {
                tel.registry
                    .counter("serve.quarantined_rows")
                    .add(n_poisoned as u64);
            }
            for (r, req) in slice.iter().enumerate() {
                if poisoned.get(r).copied().unwrap_or(false) {
                    self.flight_note("quarantine", "serve.score", ctx, req.id, u64::MAX);
                }
            }
        }
        slice
            .iter()
            .zip(lists)
            .enumerate()
            .map(|(r, (req, items))| {
                let items = if poisoned.get(r).copied().unwrap_or(false) {
                    // batch_top_k's total_cmp would rank NaN/+Inf first;
                    // re-rank this row from scratch, finite scores only.
                    self.quarantined_row_top_k(scores.row(r), &req.history)
                } else {
                    items
                };
                Response { id: req.id, items }
            })
            .collect()
    }

    /// Degraded per-row scorer: full sort over finite scores only, same
    /// (`total_cmp` descending, ascending index) tie policy as the fast
    /// path. NaN and +Inf entries are dropped from the candidate set.
    /// `row` is window-local; the returned items are global.
    fn quarantined_row_top_k(&self, row: &[f32], history: &[usize]) -> Vec<ScoredItem> {
        let mut excluded = vec![false; row.len()];
        if self.filter_seen {
            for &h in history {
                if let Some(local) = h.checked_sub(self.item_offset) {
                    if let Some(e) = excluded.get_mut(local) {
                        *e = true;
                    }
                }
            }
        }
        let mut order: Vec<usize> = row
            .iter()
            .zip(&excluded)
            .enumerate()
            .filter(|(_, (v, ex))| v.is_finite() && !**ex)
            .map(|(i, _)| i)
            .collect();
        // `order` holds in-bounds indices by construction; the checked
        // reads (with a -inf default that never wins) keep this total.
        let score_at = |i: usize| row.get(i).copied().unwrap_or(f32::NEG_INFINITY);
        order.sort_by(|&a, &b| score_at(b).total_cmp(&score_at(a)).then(a.cmp(&b)));
        order
            .into_iter()
            .take(self.k)
            .filter_map(|i| {
                row.get(i).map(|&score| ScoredItem {
                    item: self.item_offset + i,
                    score,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_fault::RetryPolicy;
    use wr_tensor::Rng64;

    fn shard_fixture(n_items: usize, range: Range<usize>, k: usize) -> (Tensor, CatalogShard) {
        let mut rng = Rng64::seed_from(41);
        let items = Tensor::randn(&[n_items, 8], &mut rng);
        let cfg = ServeConfig {
            k,
            max_batch: 8,
            max_seq: 6,
            filter_seen: true,
        };
        let shard = CatalogShard::from_window(&items, range, &cfg);
        (items, shard)
    }

    #[test]
    fn window_scoring_matches_full_catalog_columns() {
        let (items, shard) = shard_fixture(37, 11..29, 5);
        let mut rng = Rng64::seed_from(7);
        let users = Tensor::randn(&[3, 8], &mut rng);
        let full = users.matmul(&items.transpose());
        let windowed = users.matmul(shard.cache().items_t());
        for r in 0..3 {
            for c in 0..18 {
                assert_eq!(
                    windowed.row(r)[c].to_bits(),
                    full.row(r)[11 + c].to_bits(),
                    "window gemm must be bit-identical to the full gemm's columns"
                );
            }
        }
    }

    #[test]
    fn windowed_results_are_global_ids_with_global_seen_filter() {
        let (_, shard) = shard_fixture(37, 11..29, 40);
        let mut rng = Rng64::seed_from(8);
        let users = Tensor::randn(&[2, 8], &mut rng);
        let reqs = vec![
            Request { id: 0, history: vec![12, 28, 3] },  // 12, 28 in window
            Request { id: 1, history: vec![] },
        ];
        let responses = shard.serve_encoded(&reqs, &users);
        // k exceeds the window: all unseen window items come back.
        assert_eq!(responses[0].items.len(), 16);
        assert_eq!(responses[1].items.len(), 18);
        for resp in &responses {
            for s in &resp.items {
                assert!((11..29).contains(&s.item), "global id {}", s.item);
            }
        }
        assert!(responses[0].items.iter().all(|s| s.item != 12 && s.item != 28));
    }

    #[test]
    fn shard_backpressure_rejects_oversized_calls() {
        let (_, shard) = shard_fixture(20, 0..20, 3);
        let shard = shard.with_resilience(ResilienceConfig {
            max_queue_depth: 2,
            retry: RetryPolicy::default(),
        });
        let mut rng = Rng64::seed_from(9);
        let users = Tensor::randn(&[3, 8], &mut rng);
        let reqs: Vec<Request> = (0..3)
            .map(|i| Request { id: i, history: vec![] })
            .collect();
        match shard.try_serve_encoded(&reqs, &users) {
            Err(ServeError::Overloaded { depth, limit }) => {
                assert_eq!((depth, limit), (3, 2));
            }
            other => panic!("expected per-shard backpressure rejection, got {other:?}"),
        }
        assert!(shard.try_serve_encoded(&reqs[..2], &users).is_ok());
    }

    #[test]
    fn replica_shares_the_cache_and_scores_bit_identically() {
        let (_, shard) = shard_fixture(37, 11..29, 5);
        let replica = shard.replica();
        assert!(replica.cache().shares_storage_with(shard.cache()));
        assert_eq!(replica.item_offset(), shard.item_offset());
        assert_eq!(replica.quarantined_items(), shard.quarantined_items());
        let mut rng = Rng64::seed_from(12);
        let users = Tensor::randn(&[4, 8], &mut rng);
        let reqs: Vec<Request> = (0..4)
            .map(|i| Request { id: i, history: vec![12, 3] })
            .collect();
        let a = shard.serve_encoded(&reqs, &users);
        let b = replica.serve_encoded(&reqs, &users);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.items.len(), rb.items.len());
            for (sa, sb) in ra.items.iter().zip(&rb.items) {
                assert_eq!(sa.item, sb.item);
                assert_eq!(sa.score.to_bits(), sb.score.to_bits());
            }
        }
    }

    #[test]
    fn strict_replica_path_surfaces_typed_failures() {
        let (_, shard) = shard_fixture(20, 0..20, 3);
        let mut rng = Rng64::seed_from(13);
        let users = Tensor::randn(&[2, 8], &mut rng);
        let reqs: Vec<Request> = (0..2)
            .map(|i| Request { id: i, history: vec![] })
            .collect();
        let unlimited = DeadlineBudget::unlimited();
        // Healthy: answers like the absorbing path.
        let ok = shard
            .try_serve_replica(&reqs, &users, TraceContext::UNTRACED, unlimited, 0)
            .unwrap();
        assert_eq!(ok, shard.serve_encoded(&reqs, &users));
        // Expired deadline: typed rejection, nothing scored.
        let spent = DeadlineBudget::started_at(0, 100);
        match shard.try_serve_replica(&reqs, &users, TraceContext::UNTRACED, spent, 250) {
            Err(ServeError::DeadlineExceeded { elapsed_ns, budget_ns }) => {
                assert_eq!((elapsed_ns, budget_ns), (250, 100));
            }
            other => panic!("expected deadline rejection, got {other:?}"),
        }
        // A permanently-dead replica: typed panic after the retry budget,
        // never absorbed into empty-item isolation.
        let mut dead = shard.replica().with_sleeper(Arc::new(wr_fault::NoSleep));
        dead.set_injector(Arc::new(wr_fault::KillAfter::serve_rows()));
        match dead.try_serve_replica(&reqs, &users, TraceContext::UNTRACED, unlimited, 0) {
            Err(ServeError::Panicked { attempts }) => {
                assert_eq!(attempts, RetryPolicy::default().max_attempts);
            }
            other => panic!("expected typed panic failure, got {other:?}"),
        }
        // The primary (same cache handle) is untouched by the replica's
        // injector swap.
        assert!(shard
            .try_serve_replica(&reqs, &users, TraceContext::UNTRACED, unlimited, 0)
            .is_ok());
    }

    #[test]
    fn rearm_quarantines_poisoned_global_rows() {
        let mut rng = Rng64::seed_from(10);
        let items = Tensor::randn(&[30, 8], &mut rng);
        let cfg = ServeConfig { k: 4, max_batch: 8, max_seq: 6, filter_seen: false };
        let mut shard = CatalogShard::from_window(&items, 10..20, &cfg);
        assert!(shard.quarantined_items().is_empty());
        // A plan dense enough to hit at least one row in a 10-row window.
        let rates = wr_fault::FaultRates {
            poison: 1.0,
            ..Default::default()
        };
        let plan = wr_fault::FaultPlan::with_rates(3, rates);
        shard.rearm(&items, std::sync::Arc::new(plan));
        assert!(!shard.quarantined_items().is_empty());
        for &q in shard.quarantined_items() {
            assert!(q < 10, "quarantine indices are window-local");
        }
    }
}
