//! ANN differential gates (ISSUE 6).
//!
//! Two anchors keep the IVF scorer honest:
//!
//! 1. **Exactness at full probe** — `nprobe = nlist` must be
//!    *bit-identical* to the dense gemm scorer on a seeded 2048-query
//!    trace, at `WR_THREADS` 1 and 8, pinned via the replay
//!    `top1_checksum` (and, stronger, per-item score bits).
//! 2. **Recall at partial probe** — at `nprobe ≪ nlist` the index must
//!    still find ≥ 99% of the exact top-20 while scanning at most a
//!    quarter of the catalog (telemetry-verified rows-scanned budget).
//!
//! The model is the paper's serving configuration: whitened text table →
//! projection tower → SASRec encoder (whitening is exactly what makes
//! the IVF cells well-behaved — the isotropy argument in `wr_ann`).

use std::sync::Arc;

use wr_models::{zoo, LossKind, ModelConfig, SasRec, TextTower};
use wr_serve::{replay, QueryLog, Response, Scorer, ServeConfig, ServeEngine};
use wr_tensor::{Rng64, Tensor};

const N_ITEMS: usize = 2048;
const MAX_SEQ: usize = 10;
const NLIST: usize = 128;

fn whitenrec_model(table_seed: u64, init_seed: u64) -> Box<SasRec> {
    let mut table_rng = Rng64::seed_from(table_seed);
    let raw = Tensor::randn(&[N_ITEMS, 24], &mut table_rng);
    let whitened = zoo::whiten_relaxed(&raw, 4);
    let mut rng = Rng64::seed_from(init_seed);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        blocks: 1,
        max_seq: MAX_SEQ,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let tower = TextTower::new(whitened, config.dim, 2, &mut rng);
    Box::new(SasRec::new(
        "whitenrec-ann",
        Box::new(tower),
        LossKind::Softmax,
        config,
        &mut rng,
    ))
}

fn cfg(k: usize) -> ServeConfig {
    ServeConfig {
        k,
        max_batch: 32,
        max_seq: MAX_SEQ,
        filter_seen: true,
    }
}

fn exact_engine(seed: u64, k: usize) -> ServeEngine {
    ServeEngine::new(whitenrec_model(seed, seed), cfg(k))
}

/// An IVF engine over the *same* weights as [`exact_engine`] (identical
/// seeds → identical model → identical user vectors and item table).
fn ann_engine(seed: u64, k: usize, nprobe: usize) -> ServeEngine {
    let engine = exact_engine(seed, k);
    let index = engine.cache().build_ivf(NLIST, 7).unwrap();
    engine.with_ann(Arc::new(index), nprobe)
}

fn assert_bit_identical(a: &[Response], b: &[Response], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: response count");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.id, rb.id, "{what}: id at {i}");
        assert_eq!(ra.items.len(), rb.items.len(), "{what}: k at {i}");
        for (sa, sb) in ra.items.iter().zip(&rb.items) {
            assert_eq!(sa.item, sb.item, "{what}: item in response {i}");
            assert_eq!(
                sa.score.to_bits(),
                sb.score.to_bits(),
                "{what}: score bits in response {i}"
            );
        }
    }
}

#[test]
fn full_probe_replay_is_bit_identical_to_exact() {
    let log = QueryLog::synthetic(2048, N_ITEMS, MAX_SEQ + 3, 41);
    let exact = exact_engine(23, 10);
    let ann = ann_engine(23, 10, NLIST);
    assert_eq!(ann.scorer(), Scorer::Ivf { nprobe: NLIST });

    let mut checksums = Vec::new();
    for threads in [1usize, 8] {
        wr_runtime::set_threads(threads);
        let (exact_resp, exact_report) = replay(&exact, &log);
        let (ann_resp, ann_report) = replay(&ann, &log);
        assert_bit_identical(
            &ann_resp,
            &exact_resp,
            &format!("nprobe=nlist vs exact, {threads} threads"),
        );
        assert_eq!(
            ann_report.top1_checksum, exact_report.top1_checksum,
            "top1_checksum diverged at {threads} threads"
        );
        checksums.push(ann_report.top1_checksum);
    }
    wr_runtime::set_threads(1);
    assert_eq!(checksums[0], checksums[1], "checksum not thread-stable");
}

#[test]
fn oversized_nprobe_clamps_to_full_probe() {
    let log = QueryLog::synthetic(64, N_ITEMS, MAX_SEQ + 3, 42);
    let full = ann_engine(29, 10, NLIST);
    let clamped = ann_engine(29, 10, NLIST * 10);
    assert_bit_identical(
        &clamped.serve(&log.queries),
        &full.serve(&log.queries),
        "nprobe clamp",
    );
}

#[test]
fn partial_probe_recall_at_20_is_high_on_quarter_budget() {
    const K: usize = 20;
    const NPROBE: usize = 31; // < NLIST / 4
    let log = QueryLog::synthetic(256, N_ITEMS, MAX_SEQ + 3, 43);
    let exact = exact_engine(31, K);
    let tel = wr_obs::Telemetry::new();
    let ann = ann_engine(31, K, NPROBE).with_telemetry(tel.clone());

    let exact_resp = exact.serve(&log.queries);
    let ann_resp = ann.serve(&log.queries);

    let mut hits = 0usize;
    let mut total = 0usize;
    for (e, a) in exact_resp.iter().zip(&ann_resp) {
        total += e.items.len();
        for want in &e.items {
            if a.items.iter().any(|got| got.item == want.item) {
                hits += 1;
            }
        }
    }
    let recall = hits as f64 / total as f64;
    assert!(
        recall >= 0.99,
        "recall@{K} = {recall:.4} at nprobe={NPROBE}/{NLIST} (hits {hits}/{total})"
    );

    // Scan budget: on average at most a quarter of the catalog per query.
    let scanned = tel.registry.counter("serve.ann.rows_scanned").get() as f64;
    let budget = (log.len() * N_ITEMS) as f64 / 4.0;
    assert!(
        scanned <= budget,
        "scanned {scanned} rows > quarter-catalog budget {budget}"
    );
    let probed = tel.registry.counter("serve.ann.lists_probed").get();
    assert_eq!(probed as usize, log.len() * NPROBE);
}

#[test]
fn recommend_goes_through_the_index() {
    let ann = ann_engine(37, 10, 4);
    let exact = exact_engine(37, 10);
    let history = vec![5usize, 17, 300];
    let ann_solo = ann.recommend(&history);
    let ann_batch = ann.serve(&[wr_serve::Request {
        id: 0,
        history: history.clone(),
    }]);
    assert_eq!(ann_solo, ann_batch[0].items, "solo vs batched ANN path");
    // Full probe from recommend matches the exact interactive path too.
    let full = ann_engine(37, 10, NLIST);
    assert_eq!(full.recommend(&history), exact.recommend(&history));
}
