//! Degraded-mode serving under deterministic fault injection.
//!
//! Every test drives the real WhitenRec+ serving stack (whitened text
//! tower → SASRec → cache → micro-batched top-k) through a seeded
//! [`wr_fault::FaultPlan`] and asserts the recovery contract:
//!
//! * same seed → same faults → same responses, bit for bit;
//! * transient batch panics recover via bounded retry;
//! * a permanently poisoned request fails alone — its batch peers get
//!   answers bit-identical to a fault-free run;
//! * non-finite cache rows are quarantined and never recommended;
//! * NaN-poisoned score rows fall back to a finite-only full sort;
//! * oversized calls are rejected with a typed `Overloaded` error.
//!
//! All engines use [`wr_fault::NoSleep`], so no test ever sleeps.

use std::sync::Arc;

use wr_fault::{FaultPlan, FaultRates, NoSleep, RetryPolicy};
use wr_models::{zoo, LossKind, ModelConfig, SasRec, TextTower};
use wr_serve::{QueryLog, Request, ResilienceConfig, ServeConfig, ServeEngine, ServeError};
use wr_tensor::{Rng64, Tensor};

const N_ITEMS: usize = 60;
const MAX_SEQ: usize = 10;

fn whitenrec_model(seed: u64) -> Box<SasRec> {
    let mut table_rng = Rng64::seed_from(seed);
    let raw = Tensor::randn(&[N_ITEMS, 24], &mut table_rng);
    let whitened = zoo::whiten_relaxed(&raw, 4);
    let mut rng = Rng64::seed_from(seed);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        blocks: 2,
        max_seq: MAX_SEQ,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let tower = TextTower::new(whitened, config.dim, 2, &mut rng);
    Box::new(SasRec::new(
        "whitenrec-degraded",
        Box::new(tower),
        LossKind::Softmax,
        config,
        &mut rng,
    ))
}

fn engine(model_seed: u64) -> ServeEngine {
    ServeEngine::new(
        whitenrec_model(model_seed),
        ServeConfig {
            k: 10,
            max_batch: 8,
            max_seq: MAX_SEQ,
            filter_seen: true,
        },
    )
    .with_sleeper(Arc::new(NoSleep))
}

fn queries(n: usize, seed: u64) -> Vec<Request> {
    QueryLog::synthetic(n, N_ITEMS, MAX_SEQ + 3, seed).queries
}

/// Rates that only induce batch panics — no poison, no I/O faults — so
/// the sole difference from a fault-free run is the panic/recovery path.
fn panic_only(rate: f64) -> FaultRates {
    FaultRates {
        io_error: 0.0,
        corrupt: 0.0,
        poison: 0.0,
        panic: rate,
    }
}

fn assert_bit_identical(a: &wr_serve::Response, b: &wr_serve::Response, what: &str) {
    assert_eq!(a.id, b.id, "{what}: id");
    assert_eq!(a.items.len(), b.items.len(), "{what}: k for request {}", a.id);
    for (sa, sb) in a.items.iter().zip(&b.items) {
        assert_eq!(sa.item, sb.item, "{what}: item for request {}", a.id);
        assert_eq!(
            sa.score.to_bits(),
            sb.score.to_bits(),
            "{what}: score bits for request {}",
            a.id
        );
    }
}

fn counter(tel: &wr_obs::Telemetry, name: &str) -> u64 {
    tel.registry
        .snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("counter {name} must exist in the registry"))
}

#[test]
fn same_fault_seed_gives_bit_identical_degraded_responses() {
    let reqs = queries(48, 11);
    let rates = FaultRates {
        io_error: 0.0,
        corrupt: 0.0,
        poison: 0.25,
        panic: 0.25,
    };
    let plan_a = Arc::new(FaultPlan::with_rates(99, rates));
    let plan_b = Arc::new(FaultPlan::with_rates(99, rates));
    let a = engine(3).with_faults(plan_a.clone()).serve(&reqs);
    let b = engine(3).with_faults(plan_b.clone()).serve(&reqs);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_bit_identical(ra, rb, "same-seed replay");
    }
    // The schedules themselves replayed identically, fault for fault.
    assert_eq!(plan_a.records(), plan_b.records());
    assert!(
        plan_a.injected_total() > 0,
        "rates this high must inject something into 48 requests"
    );
}

#[test]
fn transient_batch_panics_recover_to_fault_free_answers() {
    let reqs = queries(64, 5);
    let baseline = engine(7).serve(&reqs);

    let plan = Arc::new(FaultPlan::with_rates(41, panic_only(0.3)));
    let tel = wr_obs::Telemetry::new();
    let faulty = engine(7)
        .with_faults(plan.clone())
        .with_telemetry(tel.clone());
    let degraded = faulty.serve(&reqs);

    let mut transient_hits = 0;
    let mut permanent_hits = 0;
    for (resp, base) in degraded.iter().zip(&baseline) {
        // `would_panic` at a huge attempt isolates the permanent faults:
        // transient ones clear after at most 3 failures.
        let scheduled = plan.would_panic("serve.row", resp.id, 0);
        let permanent = plan.would_panic("serve.row", resp.id, u32::MAX);
        if permanent {
            permanent_hits += 1;
            assert!(
                resp.items.is_empty(),
                "permanently poisoned request {} must fail alone, empty",
                resp.id
            );
        } else {
            if scheduled {
                transient_hits += 1;
            }
            // Everyone else — including transient victims after retry —
            // gets the exact fault-free answer.
            assert_bit_identical(resp, base, "recovered response");
        }
    }
    assert!(transient_hits > 0, "want at least one transient panic at rate 0.3");
    assert!(permanent_hits > 0, "want at least one permanent panic at rate 0.3");
    assert!(
        counter(&tel, "serve.retries") > 0,
        "retries must be counted when batches panic"
    );
}

#[test]
fn poisoned_cache_rows_are_quarantined_and_never_recommended() {
    let rates = FaultRates {
        io_error: 0.0,
        corrupt: 0.0,
        poison: 0.2,
        panic: 0.0,
    };
    let plan = Arc::new(FaultPlan::with_rates(77, rates));
    let eng = engine(13).with_faults(plan.clone());
    // Quarantine is exactly the schedule's cache.load poison set.
    let expected: Vec<usize> = (0..N_ITEMS)
        .filter(|&r| plan.would_poison("cache.load", r as u64))
        .collect();
    assert_eq!(eng.quarantined_items(), &expected[..]);
    assert!(
        !expected.is_empty(),
        "rate 0.2 over 60 items must quarantine something"
    );

    for resp in eng.serve(&queries(40, 21)) {
        for scored in &resp.items {
            assert!(
                !expected.contains(&scored.item),
                "request {} was recommended quarantined item {}",
                resp.id,
                scored.item
            );
            assert!(scored.score.is_finite());
        }
    }
}

#[test]
fn poisoned_score_rows_fall_back_to_finite_answers() {
    let reqs = queries(50, 31);
    let rates = FaultRates {
        io_error: 0.0,
        corrupt: 0.0,
        poison: 0.3,
        panic: 0.0,
    };
    let plan = Arc::new(FaultPlan::with_rates(123, rates));
    let tel = wr_obs::Telemetry::new();
    let eng = engine(9)
        .with_faults(plan.clone())
        .with_telemetry(tel.clone());
    let responses = eng.serve(&reqs);

    let scheduled: Vec<u64> = reqs
        .iter()
        .map(|r| r.id)
        .filter(|&id| plan.would_poison("serve.score", id))
        .collect();
    assert!(!scheduled.is_empty(), "rate 0.3 over 50 rows must poison something");

    for resp in &responses {
        assert!(!resp.items.is_empty(), "fallback must still answer");
        for scored in &resp.items {
            assert!(
                scored.score.is_finite(),
                "request {} leaked non-finite score {}",
                resp.id,
                scored.score
            );
        }
        // The fallback keeps the engine's ranking policy: scores descend.
        for pair in resp.items.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }
    let quarantined = counter(&tel, "serve.quarantined_rows");
    assert!(quarantined > 0, "poisoned rows must be counted");
    assert!(
        quarantined <= scheduled.len() as u64,
        "counted {} quarantined rows but only {} were scheduled",
        quarantined,
        scheduled.len()
    );
}

#[test]
fn try_serve_rejects_overload_with_typed_error() {
    let tel = wr_obs::Telemetry::new();
    let eng = engine(17)
        .with_resilience(ResilienceConfig {
            max_queue_depth: 8,
            retry: RetryPolicy::default(),
        })
        .with_telemetry(tel.clone());

    let reqs = queries(9, 3);
    match eng.try_serve(&reqs) {
        Err(ServeError::Overloaded { depth, limit }) => {
            assert_eq!(depth, 9);
            assert_eq!(limit, 8);
        }
        other => panic!(
            "9 requests over a depth-8 bound must be rejected, got {:?}",
            other.map(|r| r.len())
        ),
    }
    assert_eq!(counter(&tel, "serve.rejected_overload"), 1);

    // At the bound, the call is admitted and identical to plain serve().
    let admitted = eng.try_serve(&reqs[..8]).expect("8 requests fit");
    let direct = eng.serve(&reqs[..8]);
    assert_eq!(admitted.len(), direct.len());
    for (a, b) in admitted.iter().zip(&direct) {
        assert_bit_identical(a, b, "admitted call");
    }
    assert_eq!(counter(&tel, "serve.rejected_overload"), 1, "no new rejection");
}

#[test]
fn fault_free_engine_is_unchanged_by_the_resilience_layer() {
    // The hardened serve() with a NoFaults injector must be bit-identical
    // to what the engine produced before hardening — i.e. to serve_naive.
    let reqs = queries(32, 8);
    let eng = engine(23);
    let fast = eng.serve(&reqs);
    let naive = eng.serve_naive(&reqs);
    assert_eq!(fast.len(), naive.len());
    for (a, b) in fast.iter().zip(&naive) {
        assert_bit_identical(a, b, "fault-free vs naive");
    }
    assert!(eng.quarantined_items().is_empty());
}

#[test]
fn degraded_counters_are_exported_even_at_zero() {
    let tel = wr_obs::Telemetry::new();
    let _eng = engine(29).with_telemetry(tel.clone());
    let snap = tel.registry.snapshot();
    for name in [
        "serve.rejected_overload",
        "serve.quarantined_rows",
        "serve.retries",
    ] {
        assert!(
            snap.counters.iter().any(|(n, _)| n == name),
            "{name} must exist (at zero) before any fault fires"
        );
    }
}
