//! Differential tests for the serving engine: the batched path must be
//! bit-identical to a naive one-user-at-a-time reference, independent of
//! micro-batch size, thread count, and whether the model came from memory
//! or a checkpoint file.
//!
//! The model under test is the paper's configuration: a SASRec encoder
//! over a `TextTower` built from a whitened pre-trained embedding table
//! (zoo `whiten_relaxed`, G=4), Softmax loss — the WhitenRec+ family.

use wr_models::{zoo, LossKind, ModelConfig, SasRec, TextTower};
use wr_serve::{QueryLog, Request, ServeConfig, ServeEngine};
use wr_tensor::{Rng64, Tensor};
use wr_train::SeqRecModel;

const N_ITEMS: usize = 60;
const MAX_SEQ: usize = 10;

/// A WhitenRec+-style model: whitened text table → projection tower →
/// SASRec encoder. The frozen table is derived from `table_seed` and the
/// trainable parameters from `init_seed`; a checkpoint stores only the
/// latter (the whitened table is a pre-processing artifact shipped beside
/// it, exactly as in the paper's pipeline).
fn whitenrec_model(table_seed: u64, init_seed: u64) -> Box<SasRec> {
    let mut table_rng = Rng64::seed_from(table_seed);
    let raw = Tensor::randn(&[N_ITEMS, 24], &mut table_rng);
    let whitened = zoo::whiten_relaxed(&raw, 4);
    let mut rng = Rng64::seed_from(init_seed);
    let config = ModelConfig {
        dim: 16,
        heads: 2,
        blocks: 2,
        max_seq: MAX_SEQ,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let tower = TextTower::new(whitened, config.dim, 2, &mut rng);
    Box::new(SasRec::new(
        "whitenrec-diff",
        Box::new(tower),
        LossKind::Softmax,
        config,
        &mut rng,
    ))
}

fn engine(seed: u64, max_batch: usize) -> ServeEngine {
    ServeEngine::new(
        whitenrec_model(seed, seed),
        ServeConfig {
            k: 10,
            max_batch,
            max_seq: MAX_SEQ,
            filter_seen: true,
        },
    )
}

fn queries(n: usize, seed: u64) -> Vec<Request> {
    QueryLog::synthetic(n, N_ITEMS, MAX_SEQ + 3, seed).queries
}

/// Bit-level equality: item ids and score bit patterns (an `==` on f32
/// would conflate -0.0/0.0 and reject NaN).
fn assert_bit_identical(a: &[wr_serve::Response], b: &[wr_serve::Response], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: response count");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.id, rb.id, "{what}: id at {i}");
        assert_eq!(ra.items.len(), rb.items.len(), "{what}: k at {i}");
        for (sa, sb) in ra.items.iter().zip(&rb.items) {
            assert_eq!(sa.item, sb.item, "{what}: item in response {i}");
            assert_eq!(
                sa.score.to_bits(),
                sb.score.to_bits(),
                "{what}: score bits in response {i}"
            );
        }
    }
}

#[test]
fn batched_matches_naive_scorer() {
    let engine = engine(11, 16);
    let reqs = queries(100, 1);
    let batched = engine.serve(&reqs);
    let naive = engine.serve_naive(&reqs);
    assert_bit_identical(&batched, &naive, "batched vs naive");
}

#[test]
fn batch_size_does_not_change_results() {
    // The same queries served under different micro-batch bounds (1 row
    // per batch up to everything in one batch) must agree bit-for-bit:
    // a response may not depend on which neighbors shared its batch.
    let reqs = queries(33, 2);
    let reference = engine(12, 1).serve(&reqs);
    for max_batch in [2, 7, 33, 64] {
        let got = engine(12, max_batch).serve(&reqs);
        assert_bit_identical(&got, &reference, &format!("max_batch={max_batch}"));
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let engine = engine(13, 8);
    let reqs = queries(64, 3);
    wr_runtime::set_threads(1);
    let serial = engine.serve(&reqs);
    let naive_serial = engine.serve_naive(&reqs);
    wr_runtime::set_threads(8);
    let threaded = engine.serve(&reqs);
    wr_runtime::set_threads(1);
    assert_bit_identical(&serial, &threaded, "WR_THREADS=1 vs 8");
    assert_bit_identical(&serial, &naive_serial, "batched vs naive, serial");
}

#[test]
fn checkpoint_round_trip_serves_identically() {
    // Save the trained(-init) model, restore into an instance built around
    // the same frozen whitened table but with *differently seeded*
    // trainable parameters, and serve: every trainable parameter is
    // overwritten by the checkpoint, so responses must be bit-identical.
    let dir = std::env::temp_dir().join("wr_serve_differential");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("diff.wrck");

    let original = whitenrec_model(14, 14);
    wr_nn::save_params(&path, &original.params()).unwrap();
    let cfg = ServeConfig {
        k: 10,
        max_batch: 8,
        max_seq: MAX_SEQ,
        filter_seen: true,
    };
    let in_memory = ServeEngine::new(original, cfg);
    let restored = ServeEngine::from_checkpoint(whitenrec_model(14, 99), &path, cfg).unwrap();
    std::fs::remove_file(&path).ok();

    let reqs = queries(48, 4);
    assert_bit_identical(
        &restored.serve(&reqs),
        &in_memory.serve(&reqs),
        "checkpoint vs in-memory",
    );
    assert_bit_identical(
        &restored.serve(&reqs),
        &restored.serve_naive(&reqs),
        "restored batched vs naive",
    );
}

#[test]
fn instrumentation_does_not_change_results() {
    // Telemetry is write-only: the same model served with a full
    // Telemetry attached (spans, counters, gauges, replay latency
    // histogram) must answer bit-for-bit like the bare engine, at every
    // thread count.
    let reqs = queries(50, 6);
    let plain = engine(16, 8).serve(&reqs);

    let tel = wr_obs::Telemetry::new();
    let observed_engine = engine(16, 8).with_telemetry(tel.clone());
    let log = QueryLog {
        queries: reqs.clone(),
    };
    for threads in [1usize, 8] {
        wr_runtime::set_threads(threads);
        let direct = observed_engine.serve(&reqs);
        assert_bit_identical(&direct, &plain, &format!("instrumented, {threads} threads"));
        let (replayed, _report) = wr_serve::replay_observed(&observed_engine, &log, &tel);
        assert_bit_identical(&replayed, &plain, &format!("replayed, {threads} threads"));
    }
    wr_runtime::set_threads(1);

    // And the telemetry actually saw the traffic.
    assert!(tel.registry.counter("serve.batches").get() >= 7 * 4);
    assert_eq!(tel.registry.counter("serve.requests").get(), 50 * 4);
    assert!(!tel.tracer.events().is_empty());
}

#[test]
fn filtering_never_leaks_seen_items_under_batching() {
    let engine = engine(15, 4);
    let reqs = queries(40, 5);
    for (req, resp) in reqs.iter().zip(engine.serve(&reqs)) {
        for s in &resp.items {
            assert!(
                !req.history.contains(&s.item),
                "request {} was recommended seen item {}",
                req.id,
                s.item
            );
        }
    }
}
