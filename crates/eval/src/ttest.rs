//! Paired t-test (the `*` markers of Tables III and IV, p < 0.01).

/// Result of a paired t-test between per-case metric samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    pub t_statistic: f32,
    pub degrees_of_freedom: usize,
    /// Two-sided p-value (normal approximation; d.o.f. in these experiments
    /// is in the thousands, where the t and normal distributions coincide).
    pub p_value: f32,
    pub mean_difference: f32,
}

impl TTestResult {
    pub fn significant(&self, alpha: f32) -> bool {
        self.p_value < alpha
    }
}

/// Paired t-test on samples `a` and `b` (same cases, two systems).
/// Returns `None` when fewer than 2 pairs or zero variance of differences.
pub fn paired_t_test(a: &[f32], b: &[f32]) -> Option<TTestResult> {
    assert_eq!(a.len(), b.len(), "paired test needs aligned samples");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| (x - y) as f64).collect();
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n as f64 - 1.0);
    if var <= 0.0 {
        return None;
    }
    let se = (var / n as f64).sqrt();
    let t = mean / se;
    let p = 2.0 * (1.0 - standard_normal_cdf(t.abs()));
    Some(TTestResult {
        t_statistic: t as f32,
        degrees_of_freedom: n - 1,
        p_value: p as f32,
        mean_difference: mean as f32,
    })
}

/// Φ(x) via the Abramowitz–Stegun erf approximation (|err| < 1.5e-7).
fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    #[test]
    fn identical_samples_are_not_significant() {
        let a = vec![0.5f32; 100];
        assert!(paired_t_test(&a, &a).is_none()); // zero variance
    }

    #[test]
    fn clear_difference_is_significant() {
        let mut rng = Rng64::seed_from(1);
        let a: Vec<f32> = (0..500).map(|_| 0.6 + 0.1 * rng.normal()).collect();
        let b: Vec<f32> = (0..500).map(|_| 0.4 + 0.1 * rng.normal()).collect();
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.significant(0.01), "p = {}", r.p_value);
        assert!(r.mean_difference > 0.15);
        assert!(r.t_statistic > 10.0);
    }

    #[test]
    fn noise_is_not_significant() {
        let mut rng = Rng64::seed_from(2);
        let a: Vec<f32> = (0..200).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..200).map(|_| rng.normal()).collect();
        let r = paired_t_test(&a, &b).unwrap();
        assert!(!r.significant(0.01), "false positive: p = {}", r.p_value);
    }

    #[test]
    fn erf_sanity() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn too_few_samples() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
    }
}
