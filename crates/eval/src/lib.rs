//! Evaluation for sequential recommendation.
//!
//! * [`ranking`](evaluate_cases) — full-catalog Recall@K / NDCG@K under the
//!   leave-one-out protocol, with training-history exclusion (no negative
//!   sampling, following Krichene & Rendle as the paper does).
//! * [`uniformity`] / [`alignment`] — Eq. 7 statistics behind Fig. 6.
//! * [`item_condition_number`] — conditioning of the projected item
//!   embedding matrix (Fig. 7).
//! * [`tsne_2d`] — exact t-SNE for the qualitative embedding plots
//!   (Fig. 3), with numeric dispersion statistics so the claim is testable.
//! * [`paired_t_test`] — the significance stars in Tables III/IV.

mod conditioning;
mod coverage;
mod ranking;
mod tsne;
mod ttest;
mod uniformity;

pub use conditioning::item_condition_number;
pub use coverage::{catalog_coverage, popularity_percentile, top_k};
pub use ranking::{
    evaluate_cases, history_map, merge_top_k, per_case_pairs, rank_of_target, top_k_filtered,
    MetricSet, RankAccumulator, ScoredItem, TopK, DEFAULT_KS,
};
pub use tsne::{radial_dispersion, tsne_2d, TsneConfig};
pub use ttest::{paired_t_test, TTestResult};
pub use uniformity::{alignment, uniformity, UniformityReport};
