//! Conditioning of the item embedding matrix (Fig. 7).

use wr_linalg::{condition_number, covariance_of_rows, LinalgError};
use wr_tensor::Tensor;

/// Condition number `κ` of the covariance of projected item embeddings
/// `V: [n_items, d]` — the quantity plotted (log-scale) in Fig. 7a–d.
///
/// Ill-conditioned covariance (large κ) destabilizes optimization; the
/// paper shows whitening keeps κ small and stable across epochs.
pub fn item_condition_number(v: &Tensor) -> Result<f32, LinalgError> {
    let cov = covariance_of_rows(v, 0.0);
    condition_number(&cov, 1e-10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    #[test]
    fn whitened_matrix_is_well_conditioned() {
        let mut rng = Rng64::seed_from(1);
        let v = Tensor::randn(&[2000, 8], &mut rng);
        let k = item_condition_number(&v).unwrap();
        assert!(k < 2.0, "κ = {k}");
    }

    #[test]
    fn collapsed_matrix_is_ill_conditioned() {
        let mut rng = Rng64::seed_from(2);
        let mut v = Tensor::randn(&[500, 8], &mut rng).scale(0.01);
        for r in 0..500 {
            let a = rng.normal();
            for x in v.row_mut(r) {
                *x += a; // rank-1 dominant component
            }
        }
        let k = item_condition_number(&v).unwrap();
        assert!(k > 100.0, "κ = {k}");
    }
}
