//! Alignment and uniformity of representations (Eq. 7, Fig. 6).

use wr_tensor::{Rng64, Tensor};

/// `l_align = E ‖f(s_u) − f(v_i)‖²` over positive user–item pairs, with
/// `f` = L2 normalization. `users` and `items` are row-aligned positives.
pub fn alignment(users: &Tensor, items: &Tensor) -> f32 {
    assert_eq!(users.dims(), items.dims(), "positives must be row-aligned");
    let u = users.l2_normalize_rows();
    let v = items.l2_normalize_rows();
    let mut total = 0.0f64;
    for r in 0..u.rows() {
        let d: f32 = u
            .row(r)
            .iter()
            .zip(v.row(r))
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        total += d as f64;
    }
    (total / u.rows() as f64) as f32
}

/// `l_uniform = log E exp(−2‖f(x) − f(y)‖²)` over random same-set pairs.
/// Lower is more uniform.
pub fn uniformity(x: &Tensor, samples: usize, seed: u64) -> f32 {
    assert!(x.rows() >= 2, "uniformity needs at least two rows");
    let xn = x.l2_normalize_rows();
    let mut rng = Rng64::seed_from(seed);
    let mut acc = 0.0f64;
    for _ in 0..samples {
        let i = rng.below(xn.rows());
        let mut j = rng.below(xn.rows());
        while j == i {
            j = rng.below(xn.rows());
        }
        let d2: f32 = xn
            .row(i)
            .iter()
            .zip(xn.row(j))
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        acc += (-2.0 * d2 as f64).exp();
    }
    ((acc / samples as f64).ln()) as f32
}

/// The per-epoch point plotted in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformityReport {
    pub align: f32,
    pub uniform_user: f32,
    pub uniform_item: f32,
}

impl UniformityReport {
    pub fn compute(
        users: &Tensor,
        positive_items: &Tensor,
        all_items: &Tensor,
        samples: usize,
        seed: u64,
    ) -> Self {
        UniformityReport {
            align: alignment(users, positive_items),
            uniform_user: uniformity(users, samples, seed),
            uniform_item: uniformity(all_items, samples, seed.wrapping_add(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_zero_for_identical() {
        let mut rng = Rng64::seed_from(1);
        let x = Tensor::randn(&[10, 4], &mut rng);
        assert!(alignment(&x, &x) < 1e-10);
    }

    #[test]
    fn alignment_positive_for_different() {
        let mut rng = Rng64::seed_from(2);
        let a = Tensor::randn(&[50, 8], &mut rng);
        let b = Tensor::randn(&[50, 8], &mut rng);
        let l = alignment(&a, &b);
        // random unit vectors: E||a-b||² = 2
        assert!((l - 2.0).abs() < 0.3, "alignment {l}");
    }

    #[test]
    fn uniform_distribution_scores_lower() {
        let mut rng = Rng64::seed_from(3);
        // spread: random directions
        let spread = Tensor::randn(&[300, 16], &mut rng);
        // collapsed: tiny perturbations of one direction
        let mut collapsed = Tensor::zeros(&[300, 16]);
        for r in 0..300 {
            collapsed.row_mut(r)[0] = 1.0;
            collapsed.row_mut(r)[1] = 0.01 * rng.normal();
        }
        let lu_spread = uniformity(&spread, 2000, 4);
        let lu_collapsed = uniformity(&collapsed, 2000, 4);
        assert!(
            lu_spread < lu_collapsed - 0.5,
            "spread {lu_spread} vs collapsed {lu_collapsed}"
        );
    }

    #[test]
    fn uniformity_bounds() {
        // exp(-2 d²) ≤ 1 ⇒ log-mean ≤ 0, and ≥ exp(-2·4) for unit vectors.
        let mut rng = Rng64::seed_from(5);
        let x = Tensor::randn(&[100, 8], &mut rng);
        let lu = uniformity(&x, 1000, 6);
        assert!(lu <= 0.0 && lu >= -8.0, "lu = {lu}");
    }

    #[test]
    fn report_bundles_all_three() {
        let mut rng = Rng64::seed_from(7);
        let u = Tensor::randn(&[40, 8], &mut rng);
        let v = Tensor::randn(&[40, 8], &mut rng);
        let all = Tensor::randn(&[100, 8], &mut rng);
        let r = UniformityReport::compute(&u, &v, &all, 500, 8);
        assert!(r.align > 0.0);
        assert!(r.uniform_user < 0.0);
        assert!(r.uniform_item < 0.0);
    }
}
