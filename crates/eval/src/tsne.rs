//! Exact t-SNE (small-N) for the qualitative embedding plots of Fig. 3.

use wr_tensor::{Rng64, Tensor};

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    pub perplexity: f32,
    pub iterations: usize,
    pub learning_rate: f32,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f32,
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 30.0,
            iterations: 250,
            learning_rate: 100.0,
            exaggeration: 4.0,
            seed: 1,
        }
    }
}

/// Exact (O(n²)) t-SNE embedding of the rows of `x` into 2-D.
///
/// Suited to the ≤2k-item plots of Fig. 3; the experiment harness samples
/// the catalog down before calling this.
pub fn tsne_2d(x: &Tensor, config: TsneConfig) -> Tensor {
    let n = x.rows();
    assert!(n >= 4, "t-SNE needs at least a handful of points");
    let p = joint_probabilities(x, config.perplexity);
    let mut rng = Rng64::seed_from(config.seed);
    let mut y = Tensor::randn(&[n, 2], &mut rng).scale(1e-2);
    let mut velocity = Tensor::zeros(&[n, 2]);
    let exaggeration_until = config.iterations / 4;

    for iter in 0..config.iterations {
        let exag = if iter < exaggeration_until {
            config.exaggeration
        } else {
            1.0
        };
        // Student-t affinities in the embedding.
        let mut num = vec![0.0f32; n * n];
        let mut z = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let d2: f32 = y
                    .row(i)
                    .iter()
                    .zip(y.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                let q = 1.0 / (1.0 + d2);
                num[i * n + j] = q;
                num[j * n + i] = q;
                z += 2.0 * q as f64;
            }
        }
        let z = (z as f32).max(1e-12);

        // Gradient: 4 Σ_j (exag·p_ij − q_ij) q_num_ij (y_i − y_j).
        let mut grad = Tensor::zeros(&[n, 2]);
        for i in 0..n {
            let mut gx = 0.0f32;
            let mut gy = 0.0f32;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let qn = num[i * n + j];
                let q = qn / z;
                let coeff = 4.0 * (exag * p[i * n + j] - q) * qn;
                gx += coeff * (y.at2(i, 0) - y.at2(j, 0));
                gy += coeff * (y.at2(i, 1) - y.at2(j, 1));
            }
            *grad.at2_mut(i, 0) = gx;
            *grad.at2_mut(i, 1) = gy;
        }

        let momentum = if iter < exaggeration_until { 0.5 } else { 0.8 };
        velocity.scale_(momentum);
        velocity.axpy_(-config.learning_rate, &grad);
        y.add_assign_(&velocity);
    }
    y
}

/// Symmetric joint probabilities with per-point bandwidth calibrated to the
/// target perplexity by bisection.
fn joint_probabilities(x: &Tensor, perplexity: f32) -> Vec<f32> {
    let n = x.rows();
    // Pairwise squared distances.
    let mut d2 = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f32 = x
                .row(i)
                .iter()
                .zip(x.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[i * n + j] = d;
            d2[j * n + i] = d;
        }
    }
    let target_entropy = perplexity.min((n - 1) as f32 / 1.05).max(2.0).ln();

    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        let row = &d2[i * n..(i + 1) * n];
        let (mut lo, mut hi) = (1e-8f32, 1e8f32);
        let mut beta = 1.0f32;
        for _ in 0..40 {
            let (h, probs) = row_entropy(row, i, beta);
            if (h - target_entropy).abs() < 1e-4 {
                write_row(&mut p, i, n, &probs);
                break;
            }
            if h > target_entropy {
                lo = beta;
                beta = if hi >= 1e8 { beta * 2.0 } else { 0.5 * (beta + hi) };
            } else {
                hi = beta;
                beta = 0.5 * (beta + lo);
            }
            write_row(&mut p, i, n, &probs);
        }
    }
    // Symmetrize and normalize.
    let mut joint = vec![0.0f32; n * n];
    let mut total = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let v = 0.5 * (p[i * n + j] + p[j * n + i]);
            joint[i * n + j] = v;
            total += v as f64;
        }
    }
    let total = (total as f32).max(1e-12);
    for v in &mut joint {
        *v = (*v / total).max(1e-12);
    }
    joint
}

fn row_entropy(d2_row: &[f32], skip: usize, beta: f32) -> (f32, Vec<f32>) {
    let n = d2_row.len();
    let mut probs = vec![0.0f32; n];
    let mut sum = 0.0f32;
    for (j, &d) in d2_row.iter().enumerate() {
        if j == skip {
            continue;
        }
        let v = (-beta * d).exp();
        probs[j] = v;
        sum += v;
    }
    let sum = sum.max(1e-12);
    let mut h = 0.0f32;
    for pj in probs.iter_mut() {
        *pj /= sum;
        if *pj > 1e-12 {
            h -= *pj * pj.ln();
        }
    }
    (h, probs)
}

fn write_row(p: &mut [f32], i: usize, n: usize, probs: &[f32]) {
    p[i * n..(i + 1) * n].copy_from_slice(probs);
}

/// Clustering statistic for a 2-D point cloud: the ratio of the data's
/// mean nearest-neighbour distance to that of a uniform reference sample in
/// the same bounding box. ≈1 for a uniformly spread cloud (whitened,
/// Fig. 3b); ≪1 for cluttered/clustered clouds (raw and strongly relaxed
/// whitening, Fig. 3a/d).
pub fn radial_dispersion(y: &Tensor) -> f32 {
    assert!(y.rank() == 2 && y.cols() == 2, "expects [n, 2] points");
    let n = y.rows();
    assert!(n >= 4);
    // Bounding box.
    let (mut xmin, mut xmax) = (f32::INFINITY, f32::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f32::INFINITY, f32::NEG_INFINITY);
    for r in 0..n {
        xmin = xmin.min(y.at2(r, 0));
        xmax = xmax.max(y.at2(r, 0));
        ymin = ymin.min(y.at2(r, 1));
        ymax = ymax.max(y.at2(r, 1));
    }
    let mut rng = Rng64::seed_from(0xD15C);
    let mut reference = Tensor::zeros(&[n, 2]);
    for r in 0..n {
        *reference.at2_mut(r, 0) = rng.uniform_in(xmin, xmax);
        *reference.at2_mut(r, 1) = rng.uniform_in(ymin, ymax);
    }
    mean_nn_distance(y) / mean_nn_distance(&reference).max(1e-12)
}

fn mean_nn_distance(y: &Tensor) -> f32 {
    let n = y.rows();
    let mut total = 0.0f64;
    for i in 0..n {
        let mut best = f32::INFINITY;
        for j in 0..n {
            if i == j {
                continue;
            }
            let d2 = (y.at2(i, 0) - y.at2(j, 0)).powi(2) + (y.at2(i, 1) - y.at2(j, 1)).powi(2);
            best = best.min(d2);
        }
        total += best.sqrt() as f64;
    }
    (total / n as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters(n: usize, sep: f32, seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        let mut x = Tensor::randn(&[n, 8], &mut rng).scale(0.3);
        for r in 0..n / 2 {
            x.row_mut(r)[0] += sep;
        }
        x
    }

    #[test]
    fn tsne_separates_clusters() {
        let x = two_clusters(60, 8.0, 1);
        let y = tsne_2d(
            &x,
            TsneConfig {
                perplexity: 10.0,
                iterations: 200,
                ..TsneConfig::default()
            },
        );
        assert_eq!(y.dims(), &[60, 2]);
        assert_eq!(y.non_finite_count(), 0);
        // Between-cluster distance should exceed within-cluster spread.
        let centroid = |range: std::ops::Range<usize>| {
            let mut cx = 0.0;
            let mut cy = 0.0;
            for r in range.clone() {
                cx += y.at2(r, 0);
                cy += y.at2(r, 1);
            }
            let m = range.len() as f32;
            (cx / m, cy / m)
        };
        let (ax, ay) = centroid(0..30);
        let (bx, by) = centroid(30..60);
        let between = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        let mut within = 0.0f32;
        for r in 0..30 {
            within += ((y.at2(r, 0) - ax).powi(2) + (y.at2(r, 1) - ay).powi(2)).sqrt();
        }
        within /= 30.0;
        assert!(
            between > 2.0 * within,
            "clusters not separated: between {between}, within {within}"
        );
    }

    #[test]
    fn dispersion_separates_uniform_from_clustered() {
        let mut rng = Rng64::seed_from(2);
        // Uniform cloud in a box.
        let uniform = Tensor::rand_uniform(&[400, 2], -5.0, 5.0, &mut rng);
        // Two tight far-apart clusters in a similar bounding box.
        let clustered = {
            let mut c = Tensor::randn(&[400, 2], &mut rng).scale(0.15);
            for r in 0..200 {
                c.row_mut(r)[0] += 10.0;
            }
            c
        };
        let du = radial_dispersion(&uniform);
        let dc = radial_dispersion(&clustered);
        assert!(du > 0.7, "uniform cloud scored {du}");
        assert!(dc < 0.5 * du, "clustered {dc} vs uniform {du}");
    }

    #[test]
    fn tsne_is_deterministic() {
        let x = two_clusters(24, 4.0, 3);
        let cfg = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        let a = tsne_2d(&x, cfg);
        let b = tsne_2d(&x, cfg);
        assert_eq!(a.data(), b.data());
    }
}
