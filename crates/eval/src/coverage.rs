//! Beyond-accuracy metrics: catalog coverage and popularity bias of the
//! top-K recommendations. Standard companions to Recall/NDCG when judging
//! whether a model only recommends blockbusters.

use std::collections::BTreeSet;

use wr_tensor::Tensor;

/// Top-K item ids per row of a score matrix (ties broken by lower id).
///
/// Built on [`crate::top_k_filtered`], so the tie policy (`total_cmp`,
/// then ascending index) is total even in the presence of NaNs — the old
/// `partial_cmp`-based comparator here mapped NaN comparisons to `Equal`,
/// which is not a consistent order and let `sort_by` return
/// implementation-defined rankings.
pub fn top_k(scores: &Tensor, k: usize) -> Vec<Vec<usize>> {
    assert!(scores.rank() == 2, "top_k expects [batch, n_items]");
    (0..scores.rows())
        .map(|r| {
            crate::top_k_filtered(scores.row(r), k, &[])
                .into_iter()
                .map(|s| s.item)
                .collect()
        })
        .collect()
}

/// Fraction of the catalog that appears in at least one top-K list.
pub fn catalog_coverage(top_lists: &[Vec<usize>], n_items: usize) -> f32 {
    if n_items == 0 {
        return 0.0;
    }
    let seen: BTreeSet<usize> = top_lists.iter().flatten().copied().collect();
    seen.len() as f32 / n_items as f32
}

/// Mean popularity percentile of recommended items (0 = only the single
/// most popular item, 1 = only the least popular). ~0.5 is
/// popularity-neutral; low values flag blockbuster bias.
pub fn popularity_percentile(top_lists: &[Vec<usize>], item_counts: &[usize]) -> f32 {
    // Rank items by descending popularity once.
    let n = item_counts.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| item_counts[b].cmp(&item_counts[a]).then(a.cmp(&b)));
    let mut percentile = vec![0.0f32; n];
    for (rank, &item) in order.iter().enumerate() {
        percentile[item] = rank as f32 / (n - 1).max(1) as f32;
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    for list in top_lists {
        for &i in list {
            total += percentile[i] as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (total / count as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_score() {
        let s = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.3], &[1, 4]);
        let t = top_k(&s, 2);
        assert_eq!(t[0], vec![1, 2]);
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        let s = Tensor::from_vec(vec![0.5, 0.5, 0.5], &[1, 3]);
        assert_eq!(top_k(&s, 3)[0], vec![0, 1, 2]);
    }

    #[test]
    fn coverage_counts_distinct_items() {
        let lists = vec![vec![0, 1], vec![1, 2]];
        assert!((catalog_coverage(&lists, 10) - 0.3).abs() < 1e-6);
        assert_eq!(catalog_coverage(&[], 10), 0.0);
        assert_eq!(catalog_coverage(&lists, 0), 0.0);
    }

    #[test]
    fn popularity_percentile_detects_blockbuster_bias() {
        let counts = vec![100usize, 50, 10, 1]; // item 0 most popular
        let head_only = vec![vec![0usize, 1]];
        let tail_only = vec![vec![2usize, 3]];
        assert!(popularity_percentile(&head_only, &counts) < 0.3);
        assert!(popularity_percentile(&tail_only, &counts) > 0.7);
    }
}
