//! Full-ranking Recall@K and NDCG@K.

use std::collections::BTreeMap;

use wr_data::EvalCase;
use wr_tensor::Tensor;

/// Cutoffs reported by the paper.
pub const DEFAULT_KS: [usize; 2] = [20, 50];

/// Recall@K / NDCG@K at a set of cutoffs, plus per-user NDCG@20 samples for
/// significance testing.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSet {
    pub ks: Vec<usize>,
    pub recall: Vec<f32>,
    pub ndcg: Vec<f32>,
    pub n_cases: usize,
    /// Per-case NDCG at the first cutoff (input to the paired t-test).
    pub per_case_ndcg: Vec<f32>,
}

impl MetricSet {
    /// Recall at cutoff `k`. A cutoff the accumulator was not constructed
    /// with reads as NaN — visible in any report, fatal to no one.
    pub fn recall_at(&self, k: usize) -> f32 {
        self.ks
            .iter()
            .position(|&x| x == k)
            .and_then(|i| self.recall.get(i))
            .copied()
            .unwrap_or(f32::NAN)
    }

    /// NDCG at cutoff `k`; same unknown-cutoff policy as [`Self::recall_at`].
    pub fn ndcg_at(&self, k: usize) -> f32 {
        self.ks
            .iter()
            .position(|&x| x == k)
            .and_then(|i| self.ndcg.get(i))
            .copied()
            .unwrap_or(f32::NAN)
    }
}

impl std::fmt::Display for MetricSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self
            .ks
            .iter()
            .enumerate()
            .map(|(i, k)| format!("R@{k} {:.4} N@{k} {:.4}", self.recall[i], self.ndcg[i]))
            .collect();
        write!(f, "{}", parts.join(" | "))
    }
}

/// Streaming accumulator over evaluation cases.
#[derive(Debug, Clone)]
pub struct RankAccumulator {
    ks: Vec<usize>,
    hits: Vec<usize>,
    dcg: Vec<f64>,
    n: usize,
    per_case_ndcg: Vec<f32>,
}

impl RankAccumulator {
    pub fn new(ks: &[usize]) -> Self {
        assert!(!ks.is_empty());
        RankAccumulator {
            ks: ks.to_vec(),
            hits: vec![0; ks.len()],
            dcg: vec![0.0; ks.len()],
            n: 0,
            per_case_ndcg: Vec::new(),
        }
    }

    /// Record one case given the 0-based rank of the target
    /// (0 = ranked first). With a single relevant item, ideal DCG = 1, so
    /// NDCG@K = 1/log2(rank+2) when rank < K.
    pub fn push_rank(&mut self, rank: usize) {
        self.n += 1;
        for (i, &k) in self.ks.iter().enumerate() {
            if rank < k {
                self.hits[i] += 1;
                self.dcg[i] += 1.0 / ((rank as f64) + 2.0).log2();
            }
        }
        let k0 = self.ks[0];
        let nd = if rank < k0 {
            (1.0 / ((rank as f64) + 2.0).log2()) as f32
        } else {
            0.0
        };
        self.per_case_ndcg.push(nd);
    }

    pub fn finish(self) -> MetricSet {
        let n = self.n.max(1) as f64;
        MetricSet {
            recall: self.hits.iter().map(|&h| (h as f64 / n) as f32).collect(),
            ndcg: self.dcg.iter().map(|&d| (d / n) as f32).collect(),
            ks: self.ks,
            n_cases: self.n,
            per_case_ndcg: self.per_case_ndcg,
        }
    }
}

/// 0-based rank of `target` in `scores`, ignoring `excluded` item ids.
///
/// Ties are broken pessimistically (tied items count as ranked above the
/// target), which keeps a constant scorer from looking good by luck.
pub fn rank_of_target(scores: &[f32], target: usize, excluded: &[usize]) -> usize {
    let ts = scores[target];
    let mut excluded_mask: Option<Vec<bool>> = None;
    if !excluded.is_empty() {
        let mut m = vec![false; scores.len()];
        for &e in excluded {
            if e < m.len() {
                m[e] = true;
            }
        }
        excluded_mask = Some(m);
    }
    let mut rank = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if i == target {
            continue;
        }
        if let Some(m) = &excluded_mask {
            if m[i] {
                continue;
            }
        }
        if s >= ts {
            rank += 1;
        }
    }
    rank
}

/// Evaluate a scorer over `cases`, batched.
///
/// `score_fn` receives a batch of contexts and must return `[batch,
/// n_items]` scores. When `exclude_history` is set, every item in a case's
/// context is removed from its candidate set (the RecBole convention).
///
/// The scorer always runs on the calling thread (it is `FnMut` and may hold
/// model state); only the O(batch × n_items) rank scans fan out across the
/// [`wr_runtime`] pool. Ranks come back in batch-row order and feed a single
/// serial accumulator, so the resulting [`MetricSet`] is bit-identical for
/// any `WR_THREADS` setting.
pub fn evaluate_cases(
    cases: &[EvalCase],
    ks: &[usize],
    batch_size: usize,
    exclude_history: bool,
    mut score_fn: impl FnMut(&[&[usize]]) -> Tensor,
) -> MetricSet {
    let mut acc = RankAccumulator::new(ks);
    for chunk in cases.chunks(batch_size.max(1)) {
        let contexts: Vec<&[usize]> = chunk.iter().map(|c| c.context.as_slice()).collect();
        let scores = score_fn(&contexts);
        assert_eq!(scores.rows(), chunk.len(), "score batch size mismatch");
        let ranks = wr_runtime::parallel_map(chunk.len(), 1, |row| {
            let case = &chunk[row];
            let excluded: &[usize] = if exclude_history { &case.context } else { &[] };
            rank_of_target(scores.row(row), case.target, excluded)
        });
        for rank in ranks {
            acc.push_rank(rank);
        }
    }
    acc.finish()
}

/// One scored recommendation: an item id plus the score that ranked it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    pub item: usize,
    pub score: f32,
}

/// Bounded-heap entry ordered so the heap's maximum is the *worst* kept
/// candidate: lower score is worse; at equal scores the higher item index
/// is worse (so the kept set, and the final list, prefer lower indices).
#[derive(Debug, Clone, Copy)]
struct WorstFirst {
    score: f32,
    item: usize,
}

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `total_cmp` (not `partial_cmp`) so NaNs have a fixed place in the
        // order and the comparator is total — the repo-wide tie policy.
        other
            .score
            .total_cmp(&self.score)
            .then(self.item.cmp(&other.item))
    }
}

/// Bounded top-`k` accumulator over `(item, score)` pairs — the one
/// bounded-heap extraction every ranking consumer shares.
///
/// Push candidates in any order; [`TopK::into_sorted`] returns at most `k`
/// of them, best first, under the repo-wide total order (descending
/// `total_cmp` score, ascending item index on ties). The heap holds the
/// *worst* kept candidate at its top, so each push is `O(log k)` and a
/// full scan of `n` candidates is `O(n log k)` — never a full sort.
///
/// Consumers: [`top_k_filtered`] (dense score rows), [`merge_top_k`]
/// (partial-list merging), the `wr-ann` inverted-list scan, and
/// `wr_serve::batch_top_k`'s per-segment extraction.
pub struct TopK {
    heap: std::collections::BinaryHeap<WorstFirst>,
    k: usize,
}

impl TopK {
    pub fn new(k: usize) -> TopK {
        TopK {
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
            k,
        }
    }

    /// Offer one candidate. Kept only while it beats the current worst of
    /// the `k` best seen so far.
    pub fn push(&mut self, item: usize, score: f32) {
        if self.k == 0 {
            return;
        }
        let entry = WorstFirst { score, item };
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            // `entry < worst` means the candidate is strictly better than
            // the worst kept item under the total order above.
            if entry < *worst {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Candidates kept so far (saturates at `k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain into the final best-first list.
    pub fn into_sorted(self) -> Vec<ScoredItem> {
        let mut out: Vec<ScoredItem> = self
            .heap
            .into_iter()
            .map(|e| ScoredItem {
                item: e.item,
                score: e.score,
            })
            .collect();
        out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)));
        out
    }
}

/// K-way merge of per-list / per-shard partial top-k results into one
/// global top-`k`, under the same total order every partial was extracted
/// with (`total_cmp` descending, ascending item index on ties).
///
/// Exact by construction: the global top-`k` of a disjoint union is a
/// subset of the per-part top-`k`s, so merging partials of length ≥ the
/// requested `k` loses nothing. Partials may be any length (shorter ones
/// simply contribute fewer candidates). Items appearing in *multiple*
/// partials are offered once per appearance — callers merging overlapping
/// candidate sets (replicated shards) must deduplicate upstream; the
/// in-tree callers (ANN inverted lists, `batch_top_k` column segments)
/// partition their items, so duplicates cannot arise.
pub fn merge_top_k(k: usize, partials: &[Vec<ScoredItem>]) -> Vec<ScoredItem> {
    let mut acc = TopK::new(k);
    for part in partials {
        for s in part {
            acc.push(s.item, s.score);
        }
    }
    acc.into_sorted()
}

/// Deterministic top-`k` over one score row with seen-item filtering.
///
/// Returns at most `k` items sorted by descending score, ties broken by
/// ascending item index (`total_cmp` + index — the same policy every other
/// ranking site in the workspace uses). Item ids listed in `seen` are
/// excluded from the candidates; out-of-range ids in `seen` are ignored.
///
/// Runs in `O(n log k)` with a bounded min-heap ([`TopK`]), so
/// full-catalog scoring at serving time never sorts the whole row.
pub fn top_k_filtered(scores: &[f32], k: usize, seen: &[usize]) -> Vec<ScoredItem> {
    if k == 0 || scores.is_empty() {
        return Vec::new();
    }
    let mut seen_mask: Option<Vec<bool>> = None;
    if !seen.is_empty() {
        let mut m = vec![false; scores.len()];
        for &s in seen {
            if s < m.len() {
                m[s] = true;
            }
        }
        seen_mask = Some(m);
    }
    let mut acc = TopK::new(k);
    for (item, &score) in scores.iter().enumerate() {
        if let Some(m) = &seen_mask {
            if m[item] {
                continue;
            }
        }
        acc.push(item, score);
    }
    acc.into_sorted()
}

/// Convenience: evaluate case NDCG vectors of two models for a t-test.
pub fn per_case_pairs(a: &MetricSet, b: &MetricSet) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(a.per_case_ndcg.len(), b.per_case_ndcg.len(), "case mismatch");
    (a.per_case_ndcg.clone(), b.per_case_ndcg.clone())
}

/// Build a map from user id to that user's training items, for callers that
/// need custom exclusion sets.
pub fn history_map(train: &[Vec<usize>]) -> BTreeMap<usize, Vec<usize>> {
    train
        .iter()
        .enumerate()
        .map(|(u, s)| (u, s.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_basic() {
        let scores = [0.1, 0.9, 0.5, 0.2];
        assert_eq!(rank_of_target(&scores, 1, &[]), 0);
        assert_eq!(rank_of_target(&scores, 2, &[]), 1);
        assert_eq!(rank_of_target(&scores, 0, &[]), 3);
    }

    #[test]
    fn rank_with_exclusion() {
        let scores = [0.9, 0.8, 0.5];
        // target 2 normally ranked 2; excluding items 0 and 1 → rank 0
        assert_eq!(rank_of_target(&scores, 2, &[0, 1]), 0);
    }

    #[test]
    fn ties_are_pessimistic() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(rank_of_target(&scores, 1, &[]), 2);
    }

    #[test]
    fn ndcg_formula() {
        let mut acc = RankAccumulator::new(&[20]);
        acc.push_rank(0); // NDCG = 1/log2(2) = 1
        acc.push_rank(1); // 1/log2(3) ≈ 0.6309
        acc.push_rank(30); // miss
        let m = acc.finish();
        assert_eq!(m.n_cases, 3);
        assert!((m.recall_at(20) - 2.0 / 3.0).abs() < 1e-6);
        let expected = (1.0 + 1.0 / 3f64.log2()) / 3.0;
        assert!((m.ndcg_at(20) as f64 - expected).abs() < 1e-6);
        assert_eq!(m.per_case_ndcg.len(), 3);
        assert_eq!(m.per_case_ndcg[2], 0.0);
    }

    #[test]
    fn recall_at_multiple_cutoffs() {
        let mut acc = RankAccumulator::new(&[1, 5]);
        acc.push_rank(0);
        acc.push_rank(3);
        let m = acc.finish();
        assert!((m.recall_at(1) - 0.5).abs() < 1e-6);
        assert!((m.recall_at(5) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn evaluate_with_perfect_oracle() {
        let cases = vec![
            EvalCase {
                user: 0,
                context: vec![1, 2],
                target: 3,
            },
            EvalCase {
                user: 1,
                context: vec![0],
                target: 1,
            },
        ];
        let m = evaluate_cases(&cases, &[1, 20], 1, true, |contexts| {
            // Oracle: highest score on (last context item + 1).
            let mut t = Tensor::zeros(&[contexts.len(), 5]);
            for (r, ctx) in contexts.iter().enumerate() {
                let predict = ctx.last().unwrap() + 1;
                *t.at2_mut(r, predict) = 1.0;
            }
            t
        });
        assert_eq!(m.recall_at(1), 1.0);
        assert_eq!(m.ndcg_at(20), 1.0);
    }

    #[test]
    fn history_exclusion_changes_rank() {
        let cases = vec![EvalCase {
            user: 0,
            context: vec![0, 1],
            target: 2,
        }];
        let scorer = |contexts: &[&[usize]]| {
            let mut t = Tensor::zeros(&[contexts.len(), 4]);
            t.row_mut(0).copy_from_slice(&[0.9, 0.8, 0.7, 0.1]);
            t
        };
        let with = evaluate_cases(&cases, &[1], 8, true, scorer);
        let without = evaluate_cases(&cases, &[1], 8, false, scorer);
        assert_eq!(with.recall_at(1), 1.0); // history 0,1 excluded → target first
        assert_eq!(without.recall_at(1), 0.0);
    }

    #[test]
    fn evaluate_is_bit_identical_across_thread_counts() {
        use wr_tensor::Rng64;
        let mut rng = Rng64::seed_from(42);
        let n_items = 300;
        let cases: Vec<EvalCase> = (0..97)
            .map(|u| {
                let len = 1 + rng.below(6);
                EvalCase {
                    user: u,
                    context: (0..len).map(|_| rng.below(n_items)).collect(),
                    target: rng.below(n_items),
                }
            })
            .collect();
        let run = |threads: usize| {
            wr_runtime::set_threads(threads);
            let mut rng = Rng64::seed_from(7);
            evaluate_cases(&cases, &DEFAULT_KS, 16, true, |contexts| {
                Tensor::randn(&[contexts.len(), n_items], &mut rng)
            })
        };
        let serial = run(1);
        let parallel = run(8);
        wr_runtime::set_threads(1);
        assert_eq!(serial, parallel);
        assert_eq!(serial.per_case_ndcg, parallel.per_case_ndcg);
    }

    #[test]
    fn top_k_filtered_orders_and_filters() {
        let scores = [0.1, 0.9, 0.5, 0.7, 0.3];
        let top = top_k_filtered(&scores, 3, &[]);
        let items: Vec<usize> = top.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![1, 3, 2]);
        assert_eq!(top[0].score, 0.9);
        // Seen filtering removes the best item; out-of-range ids ignored.
        let top = top_k_filtered(&scores, 3, &[1, 999]);
        let items: Vec<usize> = top.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![3, 2, 4]);
        // k larger than the candidate set / k == 0.
        assert_eq!(top_k_filtered(&scores, 100, &[]).len(), 5);
        assert!(top_k_filtered(&scores, 0, &[]).is_empty());
        assert!(top_k_filtered(&[], 3, &[]).is_empty());
    }

    #[test]
    fn top_k_equal_scores_rank_by_index() {
        // Two items with bit-identical scores must rank deterministically by
        // ascending index, at every k (the total_cmp + index policy).
        let scores = [0.5, 0.8, 0.8, 0.1, 0.8];
        for k in 1..=5 {
            let top = top_k_filtered(&scores, k, &[]);
            let items: Vec<usize> = top.iter().map(|s| s.item).collect();
            let expect: Vec<usize> = [1, 2, 4, 0, 3][..k].to_vec();
            assert_eq!(items, expect, "k={k}");
        }
        // All-tied row: pure index order survives the bounded heap.
        let flat = [0.25f32; 7];
        let top = top_k_filtered(&flat, 4, &[]);
        let items: Vec<usize> = top.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![0, 1, 2, 3]);
    }

    #[test]
    fn top_k_matches_full_sort_reference() {
        use wr_tensor::Rng64;
        let mut rng = Rng64::seed_from(11);
        for trial in 0..20 {
            let n = 1 + rng.below(200);
            // Coarse quantization forces plenty of exact ties.
            let scores: Vec<f32> = (0..n).map(|_| (rng.below(7) as f32) * 0.125).collect();
            let seen: Vec<usize> = (0..rng.below(8)).map(|_| rng.below(n + 4)).collect();
            let k = rng.below(n + 3);
            let fast = top_k_filtered(&scores, k, &seen);
            // Reference: full sort, then filter + truncate.
            let mut idx: Vec<usize> = (0..n).filter(|i| !seen.contains(i)).collect();
            idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
            idx.truncate(k);
            let fast_items: Vec<usize> = fast.iter().map(|s| s.item).collect();
            assert_eq!(fast_items, idx, "trial {trial} n={n} k={k}");
            for s in &fast {
                assert_eq!(s.score.to_bits(), scores[s.item].to_bits());
            }
        }
    }

    #[test]
    fn merge_top_k_is_exact_over_partitions() {
        use wr_tensor::Rng64;
        let mut rng = Rng64::seed_from(29);
        for trial in 0..20 {
            let n = 16 + rng.below(400);
            // Coarse quantization forces cross-partition ties.
            let scores: Vec<f32> = (0..n).map(|_| (rng.below(9) as f32) * 0.125).collect();
            let k = 1 + rng.below(24);
            // Partition the candidates into 1..=6 arbitrary disjoint parts.
            let n_parts = 1 + rng.below(6);
            let mut parts: Vec<Vec<ScoredItem>> = vec![Vec::new(); n_parts];
            let assignment: Vec<usize> = (0..n).map(|_| rng.below(n_parts)).collect();
            let partials: Vec<Vec<ScoredItem>> = {
                for (item, &p) in assignment.iter().enumerate() {
                    parts[p].push(ScoredItem {
                        item,
                        score: scores[item],
                    });
                }
                // Each part contributes only its local top-k (the partial a
                // list scan or shard would actually send).
                parts
                    .into_iter()
                    .map(|part| {
                        let mut acc = TopK::new(k);
                        for s in &part {
                            acc.push(s.item, s.score);
                        }
                        acc.into_sorted()
                    })
                    .collect()
            };
            let merged = merge_top_k(k, &partials);
            let global = top_k_filtered(&scores, k, &[]);
            assert_eq!(merged, global, "trial {trial} n={n} k={k}");
        }
    }

    #[test]
    fn merge_top_k_edge_cases() {
        // No partials / empty partials / k = 0.
        assert!(merge_top_k(5, &[]).is_empty());
        assert!(merge_top_k(5, &[Vec::new(), Vec::new()]).is_empty());
        let one = vec![vec![
            ScoredItem { item: 3, score: 1.0 },
            ScoredItem { item: 7, score: 0.5 },
        ]];
        assert!(merge_top_k(0, &one).is_empty());
        // Merging a single partial truncates it to k, order untouched.
        let merged = merge_top_k(1, &one);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].item, 3);
        // Ties across partials resolve by ascending item index.
        let parts = vec![
            vec![ScoredItem { item: 9, score: 0.5 }],
            vec![ScoredItem { item: 2, score: 0.5 }],
        ];
        let merged = merge_top_k(2, &parts);
        let items: Vec<usize> = merged.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![2, 9]);
    }

    #[test]
    fn topk_accumulator_matches_filtered_scan() {
        let scores = [0.3f32, 0.9, 0.9, 0.1, 0.6];
        let mut acc = TopK::new(3);
        assert!(acc.is_empty());
        for (i, &s) in scores.iter().enumerate() {
            acc.push(i, s);
        }
        assert_eq!(acc.len(), 3);
        assert_eq!(acc.into_sorted(), top_k_filtered(&scores, 3, &[]));
        // k = 0 accepts pushes and stays empty.
        let mut zero = TopK::new(0);
        zero.push(0, 1.0);
        assert!(zero.into_sorted().is_empty());
    }

    #[test]
    fn top_k_handles_nan_deterministically() {
        // total_cmp sorts +NaN above +inf; the point is determinism, not a
        // particular NaN placement.
        let scores = [0.5, f32::NAN, 0.9, f32::NAN];
        let a = top_k_filtered(&scores, 4, &[]);
        let b = top_k_filtered(&scores, 4, &[]);
        let ia: Vec<usize> = a.iter().map(|s| s.item).collect();
        let ib: Vec<usize> = b.iter().map(|s| s.item).collect();
        assert_eq!(ia, ib);
        assert_eq!(ia, vec![1, 3, 2, 0]);
    }

    #[test]
    fn display_format() {
        let mut acc = RankAccumulator::new(&[20, 50]);
        acc.push_rank(0);
        let m = acc.finish();
        let s = m.to_string();
        assert!(s.contains("R@20") && s.contains("N@50"));
    }
}
