//! Shared thread pool for the whole workspace.
//!
//! Every hot kernel in the reproduction — blocked matmul in `wr-tensor`,
//! covariance and eigen plumbing in `wr-linalg`, the per-group ZCA solves of
//! relaxed whitening in `wr-whiten`, and the full-catalog ranking sweep in
//! `wr-eval` — funnels through the three primitives exported here:
//!
//! * [`parallel_for`] — index-parallel side-effect loops,
//! * [`parallel_map`] — collect per-index results in index order,
//! * [`parallel_chunks_mut`] — split one output buffer into disjoint chunks.
//!
//! # Why a hand-rolled pool (and not rayon / crossbeam)
//!
//! The build environment is fully offline and the workspace policy is
//! dependency-light: no external crates at all. `crossbeam` and
//! `parking_lot` were declared by the seed but can never be fetched here, so
//! the pool is built on `std` only — a `Mutex<VecDeque>` + `Condvar` work
//! queue feeding persistent workers, and a per-dispatch latch the caller
//! blocks on. That blocking is what makes borrowed closures sound: a
//! dispatch never returns until every job created from its closure has
//! finished, so type-erased pointers into the caller's stack stay valid for
//! exactly as long as the workers can observe them.
//!
//! # Thread count
//!
//! The pool sizes itself from the `WR_THREADS` environment variable, falling
//! back to [`std::thread::available_parallelism`]. [`set_threads`] overrides
//! it at runtime (used by benches and determinism tests). Workers are
//! spawned lazily and persist for the process lifetime; shrinking the target
//! simply leaves the extra workers parked.
//!
//! # Determinism
//!
//! At `WR_THREADS=1` every primitive degenerates to a plain sequential loop
//! over the *same* chunk decomposition, so serial and parallel runs execute
//! identical per-chunk arithmetic. The primitives themselves guarantee
//! order-independence structurally:
//!
//! * `parallel_chunks_mut` chunks write disjoint regions — the output is the
//!   same bytes no matter which worker ran which chunk;
//! * `parallel_map` stitches chunk results back together in index order, so
//!   any ordered reduction performed by the caller sees the serial order.
//!
//! Callers that fold floating-point sums therefore get bit-identical results
//! at any thread count as long as they reduce the returned values in index
//! order (this is what `wr-eval::evaluate_cases` does).
//!
//! # Observability
//!
//! The pool carries `wr-obs` instrumentation: per-task queue-wait and
//! execution timings (measured on a [`wr_obs::MonotonicClock`] owned by the
//! pool — the runtime itself never reads `Instant::now`, per wr-check R4)
//! aggregated into histograms, plus counters for dispatches and for jobs
//! executed by workers vs. the participating caller. [`pool_stats`] exposes
//! the counters (the `parallel_scaling` bench exports them so a single-CPU
//! container is detectable from the artifact), and [`record_metrics`]
//! copies everything into a caller's [`wr_obs::Registry`] snapshot. All of
//! it is write-only: no telemetry value feeds scheduling or results, and
//! the sequential `WR_THREADS=1` fast path takes no timestamps at all.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use wr_obs::clock::Clock;
use wr_obs::{Histogram, MonotonicClock, Registry};

// ---------------------------------------------------------------------------
// Thread-count policy
// ---------------------------------------------------------------------------

/// Current thread target; 0 means "not yet initialized from the env".
static TARGET: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    match std::env::var("WR_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Number of threads parallel primitives will use (including the caller).
pub fn threads() -> usize {
    let t = TARGET.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let d = default_threads();
    // Racy double-init is fine: both racers compute the same default.
    TARGET.store(d, Ordering::Relaxed);
    d
}

/// Override the thread target at runtime (clamped to at least 1).
///
/// Benches sweep this to measure scaling; determinism tests flip it between
/// 1 and N to assert bit-identical results.
pub fn set_threads(n: usize) {
    TARGET.store(n.max(1), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// One dispatched chunk: a type-erased call into the caller's closure.
///
/// `ctx` and `latch` point into the dispatching thread's stack frame. They
/// remain valid because the dispatcher blocks on the latch until every job
/// of its batch has completed.
struct Job {
    // SAFETY: callers must pass a `ctx` produced from the exact closure
    // type `call` was instantiated for (enforced by `dispatch`, the only
    // constructor of `Job` values).
    call: unsafe fn(*const (), Range<usize>),
    ctx: *const (),
    range: Range<usize>,
    latch: *const Latch,
    /// Pool-clock timestamp at enqueue, for the queue-wait histogram.
    enqueued_ns: u64,
}

// SAFETY: the raw pointers are only dereferenced while the dispatching
// thread is blocked inside `dispatch`, which keeps the referents alive.
unsafe impl Send for Job {}

/// Countdown latch: the dispatcher waits until `remaining` hits zero.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        // Poison-tolerant: a panicked sibling job must not wedge the
        // dispatcher waiting on this latch; the panic flag carries the news.
        let mut rem = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }

}

/// Write-only pool telemetry (see the module-level "Observability" notes).
struct PoolObs {
    /// The pool's private time source; the only clock the runtime touches.
    clock: MonotonicClock,
    par_dispatches: AtomicU64,
    seq_dispatches: AtomicU64,
    jobs_by_workers: AtomicU64,
    jobs_by_caller: AtomicU64,
    queue_wait_ms: Histogram,
    exec_ms: Histogram,
}

struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    workers: AtomicUsize,
    obs: PoolObs,
}

fn pool() -> &'static PoolState {
    static POOL: OnceLock<PoolState> = OnceLock::new();
    POOL.get_or_init(|| PoolState {
        queue: Mutex::new(VecDeque::new()),
        work_ready: Condvar::new(),
        workers: AtomicUsize::new(0),
        obs: PoolObs {
            clock: MonotonicClock::new(),
            par_dispatches: AtomicU64::new(0),
            seq_dispatches: AtomicU64::new(0),
            jobs_by_workers: AtomicU64::new(0),
            jobs_by_caller: AtomicU64::new(0),
            queue_wait_ms: Histogram::new(&Histogram::default_ms_bounds()),
            exec_ms: Histogram::new(&Histogram::default_ms_bounds()),
        },
    })
}

/// Samples a thread buffers locally before flushing into the shared pool
/// histograms (see [`buffer_timing`]).
const TIMING_BUFFER_LEN: usize = 32;

thread_local! {
    /// Worker-local event buffer: per-job `(queue_wait_ms, exec_ms)`
    /// samples recorded by this thread and not yet flushed into the
    /// shared [`PoolObs`] histograms.
    static TIMING_BUFFER: std::cell::RefCell<Vec<(f64, f64)>> =
        std::cell::RefCell::new(Vec::with_capacity(TIMING_BUFFER_LEN));
}

/// Record one job's timing into this thread's local buffer, flushing into
/// the shared histograms when the buffer fills. Buffering keeps the
/// per-job hot path free of contended atomic RMWs on the shared bucket
/// cache lines — the flush pays them once per [`TIMING_BUFFER_LEN`] jobs.
/// Telemetry stays write-only either way; only *when* the shared buckets
/// see a sample changes, never any computed result.
fn buffer_timing(wait_ms: f64, exec_ms: f64) {
    TIMING_BUFFER.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.push((wait_ms, exec_ms));
        if buf.len() >= TIMING_BUFFER_LEN {
            flush_buffer(&mut buf);
        }
    });
}

fn flush_buffer(buf: &mut Vec<(f64, f64)>) {
    let obs = &pool().obs;
    for (wait_ms, exec_ms) in buf.drain(..) {
        obs.queue_wait_ms.observe(wait_ms);
        obs.exec_ms.observe(exec_ms);
    }
}

/// Flush the calling thread's worker-local timing buffer into the shared
/// pool histograms. Dispatchers flush on the way out of every dispatch
/// and workers flush before going idle, so snapshots taken between
/// dispatches ([`record_metrics`]) see every completed job; call this
/// directly only when sampling from a thread that ran pool jobs outside
/// a dispatch of its own.
pub fn flush_worker_telemetry() {
    TIMING_BUFFER.with(|buf| flush_buffer(&mut buf.borrow_mut()));
}

/// Execute one job, converting panics into a latch flag so the dispatching
/// thread can re-raise them instead of the whole process aborting.
///
/// `by_worker` is telemetry-only: it attributes the job to a pool worker
/// or to the participating caller in the utilization counters.
fn run_job(job: Job, by_worker: bool) {
    let obs = &pool().obs;
    let start_ns = obs.clock.now_ns();
    let wait_ms = start_ns.saturating_sub(job.enqueued_ns) as f64 / 1e6;
    // SAFETY: `job.ctx` points at the closure `job.call` was instantiated
    // for, and the dispatching thread keeps it alive by blocking on the
    // latch until this job has counted down.
    let result = panic::catch_unwind(AssertUnwindSafe(|| unsafe {
        (job.call)(job.ctx, job.range.clone());
    }));
    let exec_ms = obs.clock.now_ns().saturating_sub(start_ns) as f64 / 1e6;
    buffer_timing(wait_ms, exec_ms);
    let who = if by_worker {
        &obs.jobs_by_workers
    } else {
        &obs.jobs_by_caller
    };
    who.fetch_add(1, Ordering::Relaxed);
    // SAFETY: dispatcher is still blocked on this latch.
    let latch = unsafe { &*job.latch };
    if result.is_err() {
        latch.panicked.store(true, Ordering::Release);
    }
    latch.count_down();
}

fn worker_loop() {
    let p = pool();
    loop {
        // Fast path: take a queued job without going idle.
        let job = p.queue.lock().unwrap().pop_front();
        let job = match job {
            Some(j) => j,
            None => {
                // Going idle: flush this worker's local timing buffer so
                // a snapshot taken between dispatches sees every sample.
                flush_worker_telemetry();
                let mut q = p.queue.lock().unwrap();
                loop {
                    if let Some(j) = q.pop_front() {
                        break j;
                    }
                    q = p.work_ready.wait(q).unwrap();
                }
            }
        };
        run_job(job, true);
    }
}

/// Lazily grow the worker set toward `wanted` persistent workers.
fn ensure_workers(wanted: usize) {
    let p = pool();
    loop {
        let cur = p.workers.load(Ordering::Relaxed);
        if cur >= wanted {
            return;
        }
        if p
            .workers
            .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        let spawned = std::thread::Builder::new()
            // wr-check: allow(R8) — names one thread per pool lifetime; the
            // spawn itself dwarfs the format allocation.
            .name(format!("wr-runtime-{cur}"))
            .spawn(worker_loop);
        if spawned.is_err() {
            // Could not spawn (resource limits): undo the count. The caller
            // participates in every dispatch, so progress is still
            // guaranteed with zero workers.
            p.workers.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    }
}

// SAFETY: caller must guarantee `ctx` is a valid `*const F` to a closure
// that outlives the call — `dispatch` derives it from a stack reference it
// keeps alive by blocking until every job has finished.
unsafe fn call_range<F: Fn(Range<usize>) + Sync>(ctx: *const (), r: Range<usize>) {
    (*(ctx as *const F))(r)
}

/// Split `0..n` into `ceil(n / chunk)` chunks, run `f` on each chunk on the
/// pool, and block until all complete. The caller participates (it drains
/// the queue alongside the workers), so the dispatch makes progress even if
/// no worker thread could be spawned and nested dispatches cannot deadlock.
fn dispatch<F: Fn(Range<usize>) + Sync>(n: usize, chunk: usize, f: F) {
    debug_assert!(chunk >= 1);
    if n == 0 {
        return;
    }
    let n_chunks = n.div_ceil(chunk);
    if threads() <= 1 || n_chunks <= 1 {
        // Guaranteed sequential fallback: same chunk boundaries, same
        // order, and no clock reads — only one counter bump.
        pool().obs.seq_dispatches.fetch_add(1, Ordering::Relaxed);
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            f(start..end);
            start = end;
        }
        return;
    }

    ensure_workers(threads().saturating_sub(1));
    let latch = Latch::new(n_chunks);
    let p = pool();
    p.obs.par_dispatches.fetch_add(1, Ordering::Relaxed);
    let enqueued_ns = p.obs.clock.now_ns();
    {
        let mut q = p.queue.lock().unwrap_or_else(|e| e.into_inner());
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            q.push_back(Job {
                call: call_range::<F>,
                ctx: &f as *const F as *const (),
                range: start..end,
                latch: &latch as *const Latch,
                enqueued_ns,
            });
            start = end;
        }
    }
    p.work_ready.notify_all();

    // Help drain the queue. We may execute jobs from other concurrent
    // batches — that only ever accelerates them.
    loop {
        let job = p.queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
        match job {
            Some(j) => run_job(j, false),
            None => break,
        }
    }
    // The caller's share of the batch is done: flush its local timing
    // buffer so the samples are visible as soon as the dispatch returns.
    flush_worker_telemetry();
    // Wait for workers to finish the jobs they grabbed. Poison-tolerant
    // throughout: a panicked job sets `latch.panicked`, and the re-raise
    // below is the single place that propagates it.
    {
        let mut rem = latch.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *rem != 0 {
            rem = latch.done.wait(rem).unwrap_or_else(|e| e.into_inner());
        }
    }
    if latch.panicked.load(Ordering::Acquire) {
        // wr-check: allow(R6) — deliberate re-raise: a worker panic must
        // surface on the dispatching thread, not be swallowed.
        panic!("wr-runtime: a parallel task panicked");
    }
}

// ---------------------------------------------------------------------------
// Public primitives
// ---------------------------------------------------------------------------

/// Pick a chunk length for `n` items given a minimum useful grain.
///
/// Aims at a handful of chunks per thread (for load balance) while never
/// going below `grain` (so tiny work items are not dispatched one by one).
pub fn chunk_len(n: usize, grain: usize) -> usize {
    let grain = grain.max(1);
    if n == 0 {
        return grain;
    }
    let balanced = n.div_ceil(threads().max(1) * 4);
    balanced.max(grain)
}

/// Run `f(i)` for every `i in 0..n` on the pool.
///
/// `grain` is the minimum number of indices per dispatched chunk. Results
/// must not depend on execution order — use [`parallel_map`] to collect
/// values, or [`parallel_chunks_mut`] to write into a shared buffer.
pub fn parallel_for<F: Fn(usize) + Sync>(n: usize, grain: usize, f: F) {
    dispatch(n, chunk_len(n, grain), |r| {
        for i in r {
            f(i);
        }
    });
}

/// Run `f` on contiguous index ranges covering `0..n`.
///
/// Like [`parallel_for`] but hands each task its whole range, letting the
/// caller hoist per-chunk setup out of the index loop.
pub fn parallel_for_chunks<F: Fn(Range<usize>) + Sync>(n: usize, grain: usize, f: F) {
    dispatch(n, chunk_len(n, grain), f);
}

/// Map `0..n` through `f` in parallel, returning results in index order.
///
/// The output is identical to `(0..n).map(f).collect()` for any thread
/// count: chunks are computed independently and stitched back together in
/// index order.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, grain: usize, f: F) -> Vec<T> {
    let chunk = chunk_len(n, grain);
    if threads() <= 1 || n.div_ceil(chunk.max(1)) <= 1 {
        return (0..n).map(f).collect();
    }
    let parts: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    dispatch(n, chunk, |r| {
        let start = r.start;
        let vals: Vec<T> = r.map(&f).collect();
        parts.lock().unwrap_or_else(|e| e.into_inner()).push((start, vals));
    });
    let mut parts = parts.into_inner().unwrap_or_else(|e| e.into_inner());
    parts.sort_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, mut vals) in parts.drain(..) {
        out.append(&mut vals);
    }
    out
}

/// Pointer wrapper that lets disjoint sub-slices be rebuilt on workers.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only ever turned into disjoint `&mut [T]` chunks
// (one per dispatched chunk index), so moving it across threads cannot
// alias; `T: Send` carries the element-type requirement.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: sharing the wrapper is sound for the same reason — all access
// goes through `slice_at`, whose callers hand each chunk to exactly one
// task.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Rebuild the sub-slice starting at `offset`. Accessed via a method so
    /// closures capture the whole (Sync) wrapper rather than the raw field.
    // SAFETY: caller must ensure `offset..offset + len` is in bounds of the
    // original buffer, that no other live reference overlaps it, and that
    // the buffer outlives the returned slice.
    unsafe fn slice_at(&self, offset: usize, len: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

/// Split `data` into chunks of `chunk_items` elements and run
/// `f(chunk_index, chunk)` on each in parallel.
///
/// Chunk boundaries depend only on `chunk_items`, never on the thread
/// count, and each chunk is written by exactly one task — so the resulting
/// buffer is bit-identical across thread counts.
pub fn parallel_chunks_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(
    data: &mut [T],
    chunk_items: usize,
    f: F,
) {
    let n = data.len();
    let chunk_items = chunk_items.max(1);
    let n_chunks = n.div_ceil(chunk_items);
    let base = SendPtr(data.as_mut_ptr());
    dispatch(n_chunks, 1, |r| {
        for ci in r {
            let start = ci * chunk_items;
            let len = chunk_items.min(n - start);
            // SAFETY: chunks are disjoint (each `ci` is dispatched once) and
            // `data` outlives the dispatch because the caller blocks.
            let slice = unsafe { base.slice_at(start, len) };
            f(ci, slice);
        }
    });
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

/// Point-in-time copy of the pool's utilization counters.
///
/// `jobs_by_workers` vs. `jobs_by_caller` is the load split between spawned
/// pool workers and the dispatching thread (which always participates);
/// on a single-CPU container `available_parallelism` is 1 and virtually all
/// jobs run on the caller — which is exactly what the `parallel_scaling`
/// bench exports this struct to make visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Current thread target ([`threads`]).
    pub threads: usize,
    /// What the OS reports as usable parallelism.
    pub available_parallelism: usize,
    /// Worker threads actually spawned so far.
    pub workers_spawned: usize,
    /// Dispatches that went through the queue.
    pub par_dispatches: u64,
    /// Dispatches that took the sequential fast path.
    pub seq_dispatches: u64,
    /// Queued jobs executed by pool workers.
    pub jobs_by_workers: u64,
    /// Queued jobs executed by the dispatching (caller) thread.
    pub jobs_by_caller: u64,
}

/// Snapshot the pool's utilization counters.
pub fn pool_stats() -> PoolStats {
    let p = pool();
    PoolStats {
        threads: threads(),
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        workers_spawned: p.workers.load(Ordering::Relaxed),
        par_dispatches: p.obs.par_dispatches.load(Ordering::Relaxed),
        seq_dispatches: p.obs.seq_dispatches.load(Ordering::Relaxed),
        jobs_by_workers: p.obs.jobs_by_workers.load(Ordering::Relaxed),
        jobs_by_caller: p.obs.jobs_by_caller.load(Ordering::Relaxed),
    }
}

/// Copy the pool's telemetry into `registry` under the `runtime.` prefix:
/// utilization gauges (values are cumulative-since-process-start, sampled
/// at call time) plus count/mean/percentile aggregates of the per-task
/// `runtime.queue_wait_ms` / `runtime.exec_ms` histograms.
pub fn record_metrics(registry: &Registry) {
    // The sampling thread may itself have executed pool jobs (the caller
    // participates in every dispatch) — surface its buffered samples.
    flush_worker_telemetry();
    let s = pool_stats();
    registry.gauge("runtime.threads").set(s.threads as f64);
    registry
        .gauge("runtime.available_parallelism")
        .set(s.available_parallelism as f64);
    registry
        .gauge("runtime.workers_spawned")
        .set(s.workers_spawned as f64);
    registry
        .gauge("runtime.par_dispatches")
        .set(s.par_dispatches as f64);
    registry
        .gauge("runtime.seq_dispatches")
        .set(s.seq_dispatches as f64);
    registry
        .gauge("runtime.jobs_by_workers")
        .set(s.jobs_by_workers as f64);
    registry
        .gauge("runtime.jobs_by_caller")
        .set(s.jobs_by_caller as f64);
    // The pool histograms are process-global and may already be adopted by
    // another registry, so export their aggregates as plain gauges.
    for (name, h) in [
        ("runtime.queue_wait_ms", &pool().obs.queue_wait_ms),
        ("runtime.exec_ms", &pool().obs.exec_ms),
    ] {
        let snap = h.snapshot();
        registry.gauge(&format!("{name}.count")).set(snap.count as f64);
        registry.gauge(&format!("{name}.mean")).set(snap.mean());
        registry
            .gauge(&format!("{name}.p50"))
            .set(snap.percentile(50.0));
        registry
            .gauge(&format!("{name}.p95"))
            .set(snap.percentile(95.0));
        registry
            .gauge(&format!("{name}.p99"))
            .set(snap.percentile(99.0));
        registry.gauge(&format!("{name}.max")).set(snap.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serialize tests that mutate the global thread target.
    fn with_target<R>(n: usize, body: impl FnOnce() -> R) -> R {
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let prev = threads();
        set_threads(n);
        let out = body();
        set_threads(prev);
        out
    }

    #[test]
    fn parallel_for_touches_every_index_once() {
        for t in [1, 2, 4, 8] {
            with_target(t, || {
                let n = 1000;
                let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                parallel_for(n, 1, |i| {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn parallel_map_matches_serial_for_arbitrary_sizes() {
        // Includes len < threads and len = 0.
        for t in [1, 3, 8] {
            with_target(t, || {
                for n in [0usize, 1, 2, 5, 7, 63, 64, 65, 1000] {
                    for grain in [1usize, 3, 64, 1000] {
                        let serial: Vec<u64> = (0..n).map(|i| (i as u64) * 31 + 7).collect();
                        let par = parallel_map(n, grain, |i| (i as u64) * 31 + 7);
                        assert_eq!(par, serial, "n={n} grain={grain} threads={t}");
                    }
                }
            });
        }
    }

    #[test]
    fn parallel_chunks_mut_covers_buffer_disjointly() {
        for t in [1, 4] {
            with_target(t, || {
                for n in [0usize, 1, 10, 257] {
                    for chunk in [1usize, 4, 100, 1000] {
                        let mut data = vec![0u32; n];
                        parallel_chunks_mut(&mut data, chunk, |ci, s| {
                            for (off, v) in s.iter_mut().enumerate() {
                                *v = (ci * chunk + off) as u32 + 1;
                            }
                        });
                        let expect: Vec<u32> = (1..=n as u32).collect();
                        assert_eq!(data, expect, "n={n} chunk={chunk} t={t}");
                    }
                }
            });
        }
    }

    #[test]
    fn ordered_float_reduction_is_bit_identical_across_thread_counts() {
        let vals: Vec<f64> = (0..10_000).map(|i| ((i * 2654435761u64 as usize) as f64).sin()).collect();
        let fold = |parts: Vec<f64>| parts.into_iter().fold(0.0f64, |a, b| a + b);
        let serial = with_target(1, || fold(parallel_map(vals.len(), 64, |i| vals[i])));
        let par = with_target(8, || fold(parallel_map(vals.len(), 64, |i| vals[i])));
        assert_eq!(serial.to_bits(), par.to_bits());
    }

    #[test]
    fn nested_dispatch_does_not_deadlock() {
        with_target(4, || {
            let total = AtomicU64::new(0);
            parallel_for(8, 1, |i| {
                let inner: u64 = parallel_map(16, 1, |j| (i * 16 + j) as u64).iter().sum();
                total.fetch_add(inner, Ordering::Relaxed);
            });
            let expect: u64 = (0..128u64).sum();
            assert_eq!(total.load(Ordering::Relaxed), expect);
        });
    }

    #[test]
    fn worker_panics_propagate_to_caller() {
        with_target(4, || {
            let result = std::panic::catch_unwind(|| {
                parallel_for(64, 1, |i| {
                    if i == 33 {
                        panic!("boom");
                    }
                });
            });
            assert!(result.is_err(), "panic must reach the dispatching thread");
        });
    }

    #[test]
    fn set_threads_clamps_to_one() {
        with_target(3, || {
            set_threads(0);
            assert_eq!(threads(), 1);
        });
    }

    #[test]
    fn chunk_len_respects_grain() {
        with_target(4, || {
            assert!(chunk_len(10, 64) >= 64);
            assert!(chunk_len(0, 8) >= 1);
            // Large n: a handful of chunks per thread.
            let c = chunk_len(16_000, 1);
            assert_eq!(c, 1000);
        });
    }

    #[test]
    fn pool_stats_count_dispatches_and_job_attribution() {
        with_target(1, || {
            let before = pool_stats();
            parallel_for(100, 1, |_| {});
            let after = pool_stats();
            assert_eq!(after.seq_dispatches, before.seq_dispatches + 1);
            assert_eq!(after.par_dispatches, before.par_dispatches);
        });
        with_target(4, || {
            let before = pool_stats();
            parallel_for(1000, 1, |i| {
                std::hint::black_box(i);
            });
            let after = pool_stats();
            assert_eq!(after.par_dispatches, before.par_dispatches + 1);
            let jobs = (after.jobs_by_workers + after.jobs_by_caller)
                - (before.jobs_by_workers + before.jobs_by_caller);
            // chunk_len(1000, 1) at 4 threads = 63 → 16 chunks.
            assert_eq!(jobs as usize, 1000usize.div_ceil(chunk_len(1000, 1)));
            assert!(after.available_parallelism >= 1);
        });
    }

    #[test]
    fn record_metrics_exports_runtime_gauges() {
        with_target(4, || {
            parallel_for(256, 1, |_| {});
            let reg = Registry::new();
            record_metrics(&reg);
            let snap = reg.snapshot();
            let names: Vec<&str> = snap.gauges.iter().map(|(n, _)| n.as_str()).collect();
            for want in [
                "runtime.threads",
                "runtime.available_parallelism",
                "runtime.jobs_by_workers",
                "runtime.jobs_by_caller",
                "runtime.exec_ms.count",
                "runtime.queue_wait_ms.p95",
            ] {
                assert!(names.contains(&want), "missing gauge {want}");
            }
            let ap = snap
                .gauges
                .iter()
                .find(|(n, _)| n == "runtime.available_parallelism")
                .map(|(_, v)| *v)
                .unwrap();
            assert!(ap >= 1.0);
        });
    }

    /// Worker-local buffering must not hide samples from between-dispatch
    /// snapshots: the caller flushes on the way out of the dispatch, the
    /// workers flush when they go idle.
    #[test]
    fn timing_buffers_flush_by_the_time_the_pool_goes_idle() {
        with_target(4, || {
            let before = pool().obs.exec_ms.snapshot().count;
            let n_jobs = 1000usize.div_ceil(chunk_len(1000, 1)) as u64;
            parallel_for(1000, 1, |i| {
                std::hint::black_box(i);
            });
            // Caller samples are flushed before `parallel_for` returns;
            // worker samples flush as each worker goes idle — poll
            // briefly for those stragglers.
            let want = before + n_jobs;
            for _ in 0..200 {
                if pool().obs.exec_ms.snapshot().count >= want {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert!(
                pool().obs.exec_ms.snapshot().count >= want,
                "buffered job timings never reached the shared histogram"
            );
        });
    }

    /// Cross-thread span attribution: spans recorded from inside pool jobs
    /// land on distinct `tid`s per executing thread. (Lives here rather
    /// than in wr-obs because the pool is the only sanctioned thread
    /// source — R3.)
    #[test]
    fn tracer_attributes_spans_across_pool_threads() {
        use wr_obs::{MockClock, Tracer};
        with_target(4, || {
            let clock = std::sync::Arc::new(MockClock::with_tick(10));
            let tracer = Tracer::new(clock as std::sync::Arc<dyn Clock>);
            parallel_for(64, 1, |i| {
                tracer.span(format!("job{i}"), "runtime").end();
            });
            let events = tracer.events();
            assert_eq!(events.len(), 64);
            // The caller participates, so tid 0 exists; every tid is small
            // and stable (< number of distinct executing threads).
            let max_tid = events.iter().map(|e| e.tid).max().unwrap();
            assert!(max_tid < 8, "tids should be densely assigned, got {max_tid}");
            // Durations come from the shared mock clock tick.
            assert!(events.iter().all(|e| e.dur_ns == 10));
        });
    }

    /// Telemetry is write-only: running with and without metric recording
    /// around the same reduction yields bit-identical results.
    #[test]
    fn instrumentation_does_not_perturb_results() {
        let run = || {
            let vals = parallel_map(4096, 16, |i| ((i as u64 * 2654435761) as f64).sin());
            vals.into_iter().fold(0.0f64, |a, b| a + b)
        };
        let a = with_target(4, run);
        record_metrics(&Registry::new());
        let b = with_target(4, run);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
