//! Mixture-of-Experts adaptor (UniSRec's item encoder).

use crate::{Linear, Module, Param, Session};
use wr_autograd::Var;
use wr_tensor::{Rng64, Tensor};

/// MoE adaptor: `y = Σ_e gate_e(x) · Expert_e(x)` with a softmax gate.
///
/// Follows UniSRec: each expert is a linear map `d_in → d_out`, the gate is
/// a linear map to expert logits with optional Gaussian noise during
/// training (load-balancing regularisation is out of scope at this scale).
#[derive(Debug, Clone)]
pub struct MoEAdaptor {
    pub experts: Vec<Linear>,
    pub gate: Linear,
    pub noise_std: f32,
}

impl MoEAdaptor {
    pub fn new(in_dim: usize, out_dim: usize, n_experts: usize, noise_std: f32, rng: &mut Rng64) -> Self {
        assert!(n_experts >= 1);
        MoEAdaptor {
            experts: (0..n_experts)
                .map(|_| Linear::new(in_dim, out_dim, true, rng))
                .collect(),
            gate: Linear::new(in_dim, n_experts, false, rng),
            noise_std,
        }
    }

    pub fn forward(&self, sess: &mut Session, x: Var) -> Var {
        let g = sess.graph;
        let mut logits = self.gate.forward(sess, x);
        if sess.is_train() && self.noise_std > 0.0 {
            let dims = g.dims(logits);
            let noise = Tensor::randn(&dims, sess.rng()).scale(self.noise_std);
            let noise = g.constant(noise);
            logits = g.add(logits, noise);
        }
        let gates = g.softmax_rows(logits); // [n, n_experts]

        let mut combined: Option<Var> = None;
        for (e, expert) in self.experts.iter().enumerate() {
            let out = expert.forward(sess, x); // [n, out]
            let gate_col = g.slice_cols(gates, e, e + 1); // [n, 1]
            // Broadcast the gate across output dims: out ⊙ gate.
            let out_dim = g.dims(out)[1];
            let ones = g.constant(Tensor::ones(&[1, out_dim]));
            let gate_full = g.matmul(gate_col, ones); // [n, out]
            let weighted = g.mul(out, gate_full);
            combined = Some(match combined {
                Some(acc) => g.add(acc, weighted),
                None => weighted,
            });
        }
        // wr-check: allow(R1) — the expert loop ran at least once:
        // n_experts >= 1 is asserted in new().
        combined.expect("at least one expert")
    }

    pub fn n_experts(&self) -> usize {
        self.experts.len()
    }
}

impl Module for MoEAdaptor {
    fn params(&self) -> Vec<Param> {
        let mut ps: Vec<Param> = self.experts.iter().flat_map(|e| e.params()).collect();
        ps.extend(self.gate.params());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_autograd::Graph;

    #[test]
    fn output_shape() {
        let mut rng = Rng64::seed_from(1);
        let moe = MoEAdaptor::new(6, 4, 3, 0.0, &mut rng);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(Tensor::randn(&[5, 6], &mut rng));
        let y = moe.forward(&mut s, x);
        assert_eq!(g.dims(y), vec![5, 4]);
    }

    #[test]
    fn single_expert_reduces_to_linear() {
        let mut rng = Rng64::seed_from(2);
        let moe = MoEAdaptor::new(3, 2, 1, 0.0, &mut rng);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let input = Tensor::randn(&[4, 3], &mut rng);
        let x = g.constant(input.clone());
        let y = moe.forward(&mut s, x);
        // gate softmax over one expert is identically 1 => y == expert(x)
        let g2 = Graph::new();
        let mut s2 = Session::eval(&g2);
        let x2 = g2.constant(input);
        let y2 = moe.experts[0].forward(&mut s2, x2);
        for (a, b) in g.value(y).data().iter().zip(g2.value(y2).data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_reach_gate_and_experts() {
        let mut rng = Rng64::seed_from(3);
        let moe = MoEAdaptor::new(4, 4, 2, 0.1, &mut rng);
        let g = Graph::new();
        let mut s = Session::train(&g, Rng64::seed_from(4));
        let x = g.constant(Tensor::randn(&[6, 4], &mut rng));
        let y = moe.forward(&mut s, x);
        let loss = g.mean_all(y);
        g.backward(loss);
        for (p, v) in s.bindings() {
            assert!(g.grad(*v).is_some(), "no grad for {}", p.name());
        }
        assert_eq!(s.bindings().len(), 2 * 2 + 1); // 2 experts (w+b) + gate w
    }
}
