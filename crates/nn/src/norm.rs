//! Layer normalization.

use crate::{Module, Param, Session};
use wr_autograd::Var;
use wr_tensor::Tensor;

/// LayerNorm over the last axis with learned affine parameters.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    pub gamma: Param,
    pub beta: Param,
    pub eps: f32,
}

impl LayerNorm {
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(format!("ln[{dim}].gamma"), Tensor::ones(&[dim])),
            beta: Param::new(format!("ln[{dim}].beta"), Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }

    pub fn forward(&self, sess: &mut Session, x: Var) -> Var {
        let gamma = sess.bind(&self.gamma);
        let beta = sess.bind(&self.beta);
        sess.graph.layer_norm_rows(x, gamma, beta, self.eps)
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_autograd::Graph;
    use wr_tensor::Rng64;

    #[test]
    fn normalizes_rows() {
        let ln = LayerNorm::new(8);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let mut rng = Rng64::seed_from(1);
        let x = g.constant(Tensor::randn(&[5, 8], &mut rng).scale(10.0).add_scalar(3.0));
        let y = ln.forward(&mut s, x);
        let yv = g.value(y);
        for r in 0..5 {
            let row = yv.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn param_count() {
        let ln = LayerNorm::new(16);
        assert_eq!(ln.param_count(), 32);
    }
}
