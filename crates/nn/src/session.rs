//! A training/eval step: binds parameters into one autograd graph.

use std::collections::BTreeMap;

use crate::Param;
use wr_autograd::{Graph, Var};
use wr_tensor::Rng64;

/// One forward(+backward) pass over a fresh graph.
///
/// The session de-duplicates parameter bindings: binding the same [`Param`]
/// twice returns the same graph node, so gradients from every use site
/// accumulate into a single leaf — required for weight sharing (WhitenRec+
/// pushes two whitened views through one projection head).
pub struct Session<'g> {
    pub graph: &'g Graph,
    bindings: BTreeMap<u64, Var>,
    order: Vec<(Param, Var)>,
    train: bool,
    rng: Rng64,
}

impl<'g> Session<'g> {
    /// Session in training mode (dropout active).
    pub fn train(graph: &'g Graph, rng: Rng64) -> Self {
        Session {
            graph,
            bindings: BTreeMap::new(),
            order: Vec::new(),
            train: true,
            rng,
        }
    }

    /// Session in evaluation mode (dropout disabled).
    pub fn eval(graph: &'g Graph) -> Self {
        Session {
            graph,
            bindings: BTreeMap::new(),
            order: Vec::new(),
            train: false,
            rng: Rng64::seed_from(0),
        }
    }

    pub fn is_train(&self) -> bool {
        self.train
    }

    /// Bind a parameter into the graph (idempotent per session).
    pub fn bind(&mut self, p: &Param) -> Var {
        if let Some(&v) = self.bindings.get(&p.id()) {
            return v;
        }
        let v = self.graph.param(p.get());
        self.bindings.insert(p.id(), v);
        self.order.push((p.clone(), v));
        v
    }

    /// Dropout that is a no-op in eval mode.
    pub fn dropout(&mut self, x: Var, p: f32) -> Var {
        if self.train && p > 0.0 {
            self.graph.dropout(x, p, &mut self.rng)
        } else {
            x
        }
    }

    /// All `(param, var)` bindings made during this session, in bind order.
    pub fn bindings(&self) -> &[(Param, Var)] {
        &self.order
    }

    /// RNG for stochastic layers beyond dropout (noise in MoE gating).
    pub fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Tensor;

    #[test]
    fn bind_is_idempotent() {
        let g = Graph::new();
        let mut s = Session::train(&g, Rng64::seed_from(0));
        let p = Param::new("w", Tensor::ones(&[2, 2]));
        let v1 = s.bind(&p);
        let v2 = s.bind(&p);
        assert_eq!(v1, v2);
        assert_eq!(s.bindings().len(), 1);
    }

    #[test]
    fn shared_param_accumulates_grads() {
        let g = Graph::new();
        let mut s = Session::train(&g, Rng64::seed_from(0));
        let p = Param::new("w", Tensor::from_vec(vec![2.0], &[1, 1]));
        let w = s.bind(&p);
        let x = g.constant(Tensor::from_vec(vec![3.0], &[1, 1]));
        // y = w*x + w*x => dy/dw = 2x = 6
        let y1 = g.matmul(x, w);
        let y2 = g.matmul(x, w);
        let y = g.add(y1, y2);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(w).unwrap().data(), &[6.0]);
    }

    #[test]
    fn eval_mode_disables_dropout() {
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(Tensor::ones(&[8, 8]));
        let y = s.dropout(x, 0.9);
        assert_eq!(x, y); // no-op returns the same node
    }
}
