//! Dense layers and the paper's projection heads.

use crate::{Module, Param, Session};
use wr_autograd::Var;
use wr_tensor::{Initializer, Rng64};

/// Fully-connected layer `y = x W (+ b)` with `W: [in, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub weight: Param,
    pub bias: Option<Param>,
}

impl Linear {
    pub fn new(in_dim: usize, out_dim: usize, bias: bool, rng: &mut Rng64) -> Self {
        let weight = Param::new(
            format!("linear[{in_dim}x{out_dim}].w"),
            Initializer::XavierUniform.init_matrix(in_dim, out_dim, rng),
        );
        let bias = bias.then(|| {
            Param::new(
                format!("linear[{in_dim}x{out_dim}].b"),
                Initializer::Zeros.init_matrix(1, out_dim, rng).reshape(&[out_dim]),
            )
        });
        Linear { weight, bias }
    }

    pub fn forward(&self, sess: &mut Session, x: Var) -> Var {
        let w = sess.bind(&self.weight);
        let y = sess.graph.matmul(x, w);
        match &self.bias {
            Some(b) => {
                let bv = sess.bind(b);
                sess.graph.add_row_broadcast(y, bv)
            }
            None => y,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.weight.dims()[0]
    }

    pub fn out_dim(&self) -> usize {
        self.weight.dims()[1]
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<Param> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

/// Multi-layer perceptron with ReLU on every hidden layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    /// Apply ReLU after the final layer too (the paper's projector appends
    /// ReLU to both hidden layers of the 2-layer head).
    relu_on_output: bool,
    dropout: f32,
}

impl Mlp {
    /// `dims = [in, h1, ..., out]`; one `Linear` per consecutive pair.
    pub fn new(dims: &[usize], relu_on_output: bool, dropout: f32, rng: &mut Rng64) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out]");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], true, rng))
            .collect();
        Mlp {
            layers,
            relu_on_output,
            dropout,
        }
    }

    pub fn forward(&self, sess: &mut Session, mut x: Var) -> Var {
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(sess, x);
            if i + 1 < n || self.relu_on_output {
                x = sess.graph.relu(x);
            }
            if i + 1 < n {
                x = sess.dropout(x, self.dropout);
            }
        }
        x
    }

    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl Module for Mlp {
    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

/// The projection-head variants ablated in Table V.
#[derive(Debug, Clone)]
pub enum ProjectionHead {
    /// Single linear map, no activation ("Linear" row).
    Linear(Linear),
    /// `k`-hidden-layer MLP with ReLU after every layer ("MLP-k" rows).
    Mlp(Mlp),
}

impl ProjectionHead {
    /// Build the head named in the paper: 0 hidden layers → Linear;
    /// otherwise an MLP with `hidden_layers` layers of width `out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, hidden_layers: usize, rng: &mut Rng64) -> Self {
        if hidden_layers == 0 {
            ProjectionHead::Linear(Linear::new(in_dim, out_dim, true, rng))
        } else {
            let mut dims = vec![in_dim];
            dims.extend(std::iter::repeat(out_dim).take(hidden_layers));
            ProjectionHead::Mlp(Mlp::new(&dims, true, 0.0, rng))
        }
    }

    pub fn forward(&self, sess: &mut Session, x: Var) -> Var {
        match self {
            ProjectionHead::Linear(l) => l.forward(sess, x),
            ProjectionHead::Mlp(m) => m.forward(sess, x),
        }
    }
}

impl Module for ProjectionHead {
    fn params(&self) -> Vec<Param> {
        match self {
            ProjectionHead::Linear(l) => l.params(),
            ProjectionHead::Mlp(m) => m.params(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_autograd::Graph;
    use wr_tensor::{Rng64, Tensor};

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = Rng64::seed_from(1);
        let l = Linear::new(3, 5, true, &mut rng);
        assert_eq!(l.in_dim(), 3);
        assert_eq!(l.out_dim(), 5);
        assert_eq!(l.param_count(), 3 * 5 + 5);

        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(Tensor::ones(&[4, 3]));
        let y = l.forward(&mut s, x);
        assert_eq!(g.dims(y), vec![4, 5]);
    }

    #[test]
    fn mlp_depth_and_activation() {
        let mut rng = Rng64::seed_from(2);
        let m = Mlp::new(&[4, 8, 8, 2], false, 0.0, &mut rng);
        assert_eq!(m.depth(), 3);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(Tensor::ones(&[2, 4]));
        let y = m.forward(&mut s, x);
        assert_eq!(g.dims(y), vec![2, 2]);
        // Output layer has no ReLU: negative values possible.
    }

    #[test]
    fn projection_head_variants() {
        let mut rng = Rng64::seed_from(3);
        let lin = ProjectionHead::new(6, 4, 0, &mut rng);
        assert!(matches!(lin, ProjectionHead::Linear(_)));
        let mlp2 = ProjectionHead::new(6, 4, 2, &mut rng);
        assert!(matches!(&mlp2, ProjectionHead::Mlp(m) if m.depth() == 2));

        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(Tensor::ones(&[3, 6]));
        let y = mlp2.forward(&mut s, x);
        assert_eq!(g.dims(y), vec![3, 4]);
        // ReLU on output: all activations non-negative.
        assert!(g.value(y).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn linear_trains_toward_target() {
        // One gradient step reduces a simple regression loss.
        let mut rng = Rng64::seed_from(4);
        let l = Linear::new(2, 1, true, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let target = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]);

        // One step: returns the loss before the update it applies.
        let step = |l: &Linear, lr: f32| -> f32 {
            let g = Graph::new();
            let mut s = Session::eval(&g);
            let xv = g.constant(x.clone());
            let y = l.forward(&mut s, xv);
            let t = g.constant(target.clone());
            let d = g.sub(y, t);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            let value = g.value(loss).item();
            if lr > 0.0 {
                g.backward(loss);
                for (p, v) in s.bindings() {
                    let grad = g.grad(*v).unwrap();
                    p.update(|t| t.axpy_(-lr, &grad));
                }
            }
            value
        };

        let before = step(&l, 0.1);
        let after = step(&l, 0.0);
        assert!(after < before, "loss {before} -> {after}");
    }
}
