//! Gated recurrent units (GRU4Rec's sequence encoder).

use crate::{Linear, Module, Param, Session};
use wr_autograd::Var;
use wr_tensor::{Rng64, Tensor};

/// A single GRU layer processing one timestep at a time.
///
/// Gates follow the standard formulation:
/// `z = σ(x W_xz + h W_hz)`, `r = σ(x W_xr + h W_hr)`,
/// `n = tanh(x W_xn + (r ⊙ h) W_hn)`, `h' = (1−z) ⊙ n + z ⊙ h`.
#[derive(Debug, Clone)]
pub struct Gru {
    /// Input projection for all three gates, `[in, 3*hidden]` (z | r | n).
    pub wx: Linear,
    /// Hidden projection for all three gates, `[hidden, 3*hidden]`.
    pub wh: Linear,
    pub hidden: usize,
}

impl Gru {
    pub fn new(in_dim: usize, hidden: usize, rng: &mut Rng64) -> Self {
        Gru {
            wx: Linear::new(in_dim, 3 * hidden, true, rng),
            wh: Linear::new(hidden, 3 * hidden, false, rng),
            hidden,
        }
    }

    /// One step: `x` is `[batch, in]`, `h` is `[batch, hidden]`.
    pub fn step(&self, sess: &mut Session, x: Var, h: Var) -> Var {
        let g = sess.graph;
        let d = self.hidden;
        let xs = self.wx.forward(sess, x);
        let hs = self.wh.forward(sess, h);

        let xz = g.slice_cols(xs, 0, d);
        let xr = g.slice_cols(xs, d, 2 * d);
        let xn = g.slice_cols(xs, 2 * d, 3 * d);
        let hz = g.slice_cols(hs, 0, d);
        let hr = g.slice_cols(hs, d, 2 * d);
        let hn = g.slice_cols(hs, 2 * d, 3 * d);

        let z = g.sigmoid(g.add(xz, hz));
        let r = g.sigmoid(g.add(xr, hr));
        let n = g.tanh(g.add(xn, g.mul(r, hn)));

        // h' = (1 - z) ⊙ n + z ⊙ h = n - z ⊙ n + z ⊙ h
        let zn = g.mul(z, n);
        let zh = g.mul(z, h);
        g.add(g.sub(n, zn), zh)
    }
}

impl Module for Gru {
    fn params(&self) -> Vec<Param> {
        let mut ps = self.wx.params();
        ps.extend(self.wh.params());
        ps
    }
}

/// Stacked GRU over a left-padded sequence batch.
#[derive(Debug, Clone)]
pub struct GruStack {
    pub layers: Vec<Gru>,
    pub hidden: usize,
}

impl GruStack {
    pub fn new(in_dim: usize, hidden: usize, layers: usize, rng: &mut Rng64) -> Self {
        assert!(layers >= 1);
        let mut ls = vec![Gru::new(in_dim, hidden, rng)];
        for _ in 1..layers {
            ls.push(Gru::new(hidden, hidden, rng));
        }
        GruStack { layers: ls, hidden }
    }

    /// Run over flattened embeddings `x: [batch*seq, in]` (left-padded) and
    /// return the final hidden state `[batch, hidden]`.
    ///
    /// Pad positions are skipped by masking their state updates: before a
    /// sequence starts, its hidden row stays zero.
    pub fn forward_user(
        &self,
        sess: &mut Session,
        x: Var,
        batch: usize,
        seq: usize,
        lengths: &[usize],
    ) -> Var {
        let g = sess.graph;
        let mut layer_input = x;
        for (li, layer) in self.layers.iter().enumerate() {
            let mut h = g.constant(Tensor::zeros(&[batch, self.hidden]));
            let mut outputs = Vec::with_capacity(seq);
            for t in 0..seq {
                let rows: Vec<usize> = (0..batch).map(|b| b * seq + t).collect();
                let xt = g.gather_rows(layer_input, &rows);
                let h_new = layer.step(sess, xt, h);
                // Only update rows whose sequence has started at time t.
                let update: Vec<f32> = lengths
                    .iter()
                    .map(|&len| if t >= seq - len.min(seq) { 1.0 } else { 0.0 })
                    .collect();
                let keep: Vec<f32> = update.iter().map(|u| 1.0 - u).collect();
                let h_upd = g.mask_rows(h_new, &update);
                let h_keep = g.mask_rows(h, &keep);
                h = g.add(h_upd, h_keep);
                if li + 1 < self.layers.len() {
                    outputs.push(h);
                }
            }
            if li + 1 < self.layers.len() {
                // Re-flatten per-timestep states into [batch*seq, hidden]
                // for the next layer: row b*seq+t = outputs[t].row(b).
                let per_batch: Vec<Var> = (0..batch)
                    .map(|b| {
                        let rows: Vec<Var> = outputs
                            .iter()
                            .map(|&o| g.gather_rows(o, &[b]))
                            .collect();
                        g.concat_rows(&rows)
                    })
                    .collect();
                layer_input = g.concat_rows(&per_batch);
            } else {
                return h;
            }
        }
        unreachable!("loop always returns on the last layer")
    }
}

impl Module for GruStack {
    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_autograd::Graph;

    #[test]
    fn step_shapes() {
        let mut rng = Rng64::seed_from(1);
        let gru = Gru::new(4, 6, &mut rng);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(Tensor::randn(&[3, 4], &mut rng));
        let h = g.constant(Tensor::zeros(&[3, 6]));
        let h2 = gru.step(&mut s, x, h);
        assert_eq!(g.dims(h2), vec![3, 6]);
    }

    #[test]
    fn stack_final_state() {
        let mut rng = Rng64::seed_from(2);
        let stack = GruStack::new(4, 6, 2, &mut rng);
        let (b, t) = (2, 5);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(Tensor::randn(&[b * t, 4], &mut rng));
        let u = stack.forward_user(&mut s, x, b, t, &[5, 3]);
        assert_eq!(g.dims(u), vec![b, 6]);
        assert_eq!(g.value(u).non_finite_count(), 0);
    }

    #[test]
    fn padding_does_not_change_state() {
        // A short sequence must yield the same final state whether its pad
        // slots contain zeros or garbage.
        let mut rng = Rng64::seed_from(3);
        let stack = GruStack::new(4, 5, 1, &mut rng);
        let t = 6;
        let real = Tensor::randn(&[2, 4], &mut rng);
        let run = |fill: f32| {
            let mut input = Tensor::full(&[t, 4], fill);
            input.row_mut(t - 2).copy_from_slice(real.row(0));
            input.row_mut(t - 1).copy_from_slice(real.row(1));
            let g = Graph::new();
            let mut s = Session::eval(&g);
            let x = g.constant(input);
            let u = stack.forward_user(&mut s, x, 1, t, &[2]);
            g.value(u)
        };
        let a = run(0.0);
        let b = run(77.0);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5, "pad contents leaked into GRU state");
        }
    }

    #[test]
    fn gradients_flow() {
        let mut rng = Rng64::seed_from(4);
        let stack = GruStack::new(3, 4, 2, &mut rng);
        let g = Graph::new();
        let mut s = Session::train(&g, Rng64::seed_from(5));
        let x = g.constant(Tensor::randn(&[4, 3], &mut rng));
        let u = stack.forward_user(&mut s, x, 1, 4, &[4]);
        let loss = g.sum_all(u);
        g.backward(loss);
        for (p, v) in s.bindings() {
            let grad = g.grad(*v);
            assert!(grad.is_some(), "no grad for {}", p.name());
        }
    }
}
