//! Multi-head causal self-attention.

use crate::{Linear, Module, Param, Session};
use wr_autograd::Var;
use wr_tensor::{Rng64, Tensor};

/// Additive mask value for forbidden attention edges.
const MASK_NEG: f32 = -1e9;

/// Multi-head self-attention over a flattened `[batch*seq, dim]` input.
///
/// The caller provides an additive attention mask of shape
/// `[batch, seq, seq]` (build one with [`causal_padding_mask`]); masked
/// entries hold a large negative value.
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub heads: usize,
    pub dim: usize,
    pub dropout: f32,
}

impl MultiHeadSelfAttention {
    pub fn new(dim: usize, heads: usize, dropout: f32, rng: &mut Rng64) -> Self {
        assert!(dim % heads == 0, "dim {dim} must divide into {heads} heads");
        MultiHeadSelfAttention {
            wq: Linear::new(dim, dim, true, rng),
            wk: Linear::new(dim, dim, true, rng),
            wv: Linear::new(dim, dim, true, rng),
            wo: Linear::new(dim, dim, true, rng),
            heads,
            dim,
            dropout,
        }
    }

    /// `x` is `[batch*seq, dim]`; `mask` is `[batch, seq, seq]` additive.
    pub fn forward(&self, sess: &mut Session, x: Var, batch: usize, seq: usize, mask: &Tensor) -> Var {
        let g = sess.graph;
        assert_eq!(g.dims(x), vec![batch * seq, self.dim], "attention input shape");
        assert_eq!(mask.dims(), &[batch, seq, seq], "attention mask shape");

        let q = self.wq.forward(sess, x);
        let k = self.wk.forward(sess, x);
        let v = self.wv.forward(sess, x);

        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mask_var = g.constant(mask.clone());

        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (lo, hi) = (h * dh, (h + 1) * dh);
            let qh = g.reshape(g.slice_cols(q, lo, hi), &[batch, seq, dh]);
            let kh = g.reshape(g.slice_cols(k, lo, hi), &[batch, seq, dh]);
            let vh = g.reshape(g.slice_cols(v, lo, hi), &[batch, seq, dh]);

            let scores = g.scale(g.bmm_nt(qh, kh), scale);
            let scores = g.add(scores, mask_var);
            let attn = g.softmax3d_last(scores);
            let attn = sess.dropout(attn, self.dropout);
            let out = g.bmm(attn, vh); // [batch, seq, dh]
            head_outputs.push(g.reshape(out, &[batch * seq, dh]));
        }
        let concat = if head_outputs.len() == 1 {
            head_outputs[0]
        } else {
            g.concat_cols(&head_outputs)
        };
        self.wo.forward(sess, concat)
    }
}

impl Module for MultiHeadSelfAttention {
    fn params(&self) -> Vec<Param> {
        [&self.wq, &self.wk, &self.wv, &self.wo]
            .iter()
            .flat_map(|l| l.params())
            .collect()
    }
}

/// Build the additive attention mask combining causality with left-padding.
///
/// Sequences are left-padded: a sequence of true length `len` occupies
/// positions `[seq-len, seq)`. Position `i` may attend to `j` iff `j ≤ i`
/// and `j` is a real token (or `j == i`, so pad rows stay well-defined).
pub fn causal_padding_mask(batch: usize, seq: usize, lengths: &[usize]) -> Tensor {
    assert_eq!(lengths.len(), batch, "one length per sequence");
    let mut mask = Tensor::full(&[batch, seq, seq], MASK_NEG);
    let data = mask.data_mut();
    for (b, &len) in lengths.iter().enumerate() {
        let len = len.min(seq);
        let start = seq - len;
        for i in 0..seq {
            for j in 0..seq {
                let allowed = (j <= i && j >= start) || j == i;
                if allowed {
                    data[b * seq * seq + i * seq + j] = 0.0;
                }
            }
        }
    }
    mask
}

/// Bidirectional variant of the mask: position `i` may attend to any real
/// token `j` (BERT4Rec's Cloze setting) or to itself.
pub fn bidirectional_padding_mask(batch: usize, seq: usize, lengths: &[usize]) -> Tensor {
    assert_eq!(lengths.len(), batch, "one length per sequence");
    let mut mask = Tensor::full(&[batch, seq, seq], MASK_NEG);
    let data = mask.data_mut();
    for (b, &len) in lengths.iter().enumerate() {
        let len = len.min(seq);
        let start = seq - len;
        for i in 0..seq {
            for j in 0..seq {
                if j >= start || j == i {
                    data[b * seq * seq + i * seq + j] = 0.0;
                }
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_autograd::Graph;

    #[test]
    fn mask_structure() {
        let m = causal_padding_mask(1, 4, &[2]); // real tokens at positions 2,3
        let at = |i: usize, j: usize| m.data()[i * 4 + j];
        // position 3 attends to 2 and 3 but not 0,1 (pads) or future
        assert_eq!(at(3, 3), 0.0);
        assert_eq!(at(3, 2), 0.0);
        assert_eq!(at(3, 1), MASK_NEG);
        assert_eq!(at(2, 3), MASK_NEG); // no future
        // pad rows can self-attend (keeps softmax well-defined)
        assert_eq!(at(0, 0), 0.0);
        assert_eq!(at(1, 1), 0.0);
        assert_eq!(at(1, 0), MASK_NEG);
    }

    #[test]
    fn bidirectional_mask_sees_future_real_tokens() {
        let m = bidirectional_padding_mask(1, 4, &[2]);
        let at = |i: usize, j: usize| m.data()[i * 4 + j];
        assert_eq!(at(2, 3), 0.0, "future real token visible");
        assert_eq!(at(3, 2), 0.0);
        assert_eq!(at(2, 1), MASK_NEG, "pad stays masked");
        assert_eq!(at(0, 0), 0.0, "self-attention for pads");
    }

    #[test]
    fn forward_shape_and_causality() {
        let mut rng = Rng64::seed_from(1);
        let attn = MultiHeadSelfAttention::new(8, 2, 0.0, &mut rng);
        let (b, t) = (2, 5);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(Tensor::randn(&[b * t, 8], &mut rng));
        let mask = causal_padding_mask(b, t, &[5, 5]);
        let y = attn.forward(&mut s, x, b, t, &mask);
        assert_eq!(g.dims(y), vec![b * t, 8]);
    }

    #[test]
    fn causality_future_does_not_affect_past() {
        // Changing the last item must not change earlier positions' outputs.
        let mut rng = Rng64::seed_from(2);
        let attn = MultiHeadSelfAttention::new(4, 1, 0.0, &mut rng);
        let (b, t) = (1, 4);
        let mask = causal_padding_mask(b, t, &[4]);

        let base = Tensor::randn(&[t, 4], &mut rng);
        let mut changed = base.clone();
        for v in changed.row_mut(t - 1) {
            *v += 5.0;
        }

        let run = |input: &Tensor| {
            let g = Graph::new();
            let mut s = Session::eval(&g);
            let x = g.constant(input.clone());
            let y = attn.forward(&mut s, x, b, t, &mask);
            g.value(y)
        };
        let y1 = run(&base);
        let y2 = run(&changed);
        for r in 0..t - 1 {
            for (a, c) in y1.row(r).iter().zip(y2.row(r)) {
                assert!((a - c).abs() < 1e-5, "position {r} leaked future info");
            }
        }
        // the last position does change
        let diff: f32 = y1
            .row(t - 1)
            .iter()
            .zip(y2.row(t - 1))
            .map(|(a, c)| (a - c).abs())
            .sum();
        assert!(diff > 1e-3);
    }

    #[test]
    fn padding_is_ignored() {
        // A padded short sequence must produce the same last-position output
        // as the same tokens without padding noise.
        let mut rng = Rng64::seed_from(3);
        let attn = MultiHeadSelfAttention::new(4, 2, 0.0, &mut rng);
        let t = 5;
        let real = Tensor::randn(&[2, 4], &mut rng); // two real tokens

        let run = |pad_fill: f32| {
            let mut input = Tensor::full(&[t, 4], pad_fill);
            for (r, src) in [t - 2, t - 1].iter().zip(0..2) {
                input.row_mut(*r).copy_from_slice(real.row(src));
            }
            let g = Graph::new();
            let mut s = Session::eval(&g);
            let x = g.constant(input);
            let mask = causal_padding_mask(1, t, &[2]);
            let y = attn.forward(&mut s, x, 1, t, &mask);
            g.value(y)
        };
        let y_zero = run(0.0);
        let y_noise = run(123.0);
        for (a, b) in y_zero.row(t - 1).iter().zip(y_noise.row(t - 1)) {
            assert!((a - b).abs() < 1e-4, "padding contents leaked into output");
        }
    }

    #[test]
    fn param_count() {
        let mut rng = Rng64::seed_from(4);
        let attn = MultiHeadSelfAttention::new(16, 4, 0.0, &mut rng);
        assert_eq!(attn.param_count(), 4 * (16 * 16 + 16));
    }
}
