//! Binary model checkpoints.
//!
//! Format (`WRCK` v2, little-endian, length-prefixed, CRC-sealed):
//!
//! ```text
//! magic "WRCK" | u32 version=2 | u32 n_entries
//! per entry: u32 name_len | name bytes (utf-8)
//!            u32 n_dims   | u64 dims…
//!            u64 n_values | f32 values…
//! footer:    u32 crc32(everything above) | magic "KCRW"
//! ```
//!
//! v2 hardens the v1 layout for crash safety end to end:
//!
//! * **Atomic persistence** — [`save_params`] serializes to memory and
//!   lands the bytes via `wr_fault::write_atomic` (temp file → fsync →
//!   rename → directory fsync), so a `kill -9` mid-save leaves either the
//!   previous complete generation or the new one, never a torn file.
//! * **Integrity footer** — the trailing CRC32 (IEEE) covers every byte
//!   of the header and entries; [`load_params`] recomputes it and rejects
//!   any mismatch with the typed [`CheckpointError::Corrupt`], so a torn
//!   or bit-flipped checkpoint is *never* silently loaded.
//! * **Generation fallback** — [`latest_valid_checkpoint`] scans a
//!   directory of `*.wrck` generations newest-first and returns the first
//!   one that passes full validation, so recovery degrades to the
//!   previous good generation instead of failing outright.
//!
//! v1 files (no footer) predate the integrity guarantee and are rejected
//! with a `Corrupt` error naming the missing footer; the operator re-saves
//! from source to upgrade.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

use crate::Param;
use wr_fault::{crc32, write_atomic_with, FaultInjector, NoFaults};
use wr_tensor::Tensor;

/// Little-endian reader over a byte slice (the offline workspace has no
/// `bytes` crate; this covers exactly what the checkpoint format needs).
///
/// Every getter is fallible: checkpoint files are untrusted input, so a
/// truncated or corrupted buffer must surface as a [`CheckpointError`],
/// never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() < n {
            return Err(CheckpointError::Format(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u32_le(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn get_u64_le(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let bytes = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    fn get_f32_le(&mut self, what: &str) -> Result<f32, CheckpointError> {
        let bytes = self.take(4, what)?;
        Ok(f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }
}

const MAGIC: &[u8; 4] = b"WRCK";
const FOOTER_MAGIC: &[u8; 4] = b"KCRW";
const VERSION: u32 = 2;
/// Bytes of the integrity footer: u32 CRC + footer magic.
const FOOTER_LEN: usize = 8;

/// Errors from checkpoint IO.
#[derive(Debug)]
pub enum CheckpointError {
    Io(io::Error),
    /// Not a checkpoint file / wrong version.
    Format(String),
    /// The integrity footer does not match the payload — the file is
    /// torn, bit-flipped, or otherwise damaged. Callers should fall back
    /// to [`latest_valid_checkpoint`] over their checkpoint directory.
    Corrupt(String),
    /// A parameter expected by `restore` is absent or mis-shaped.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format: {m}"),
            CheckpointError::Corrupt(m) => write!(f, "checkpoint corrupt: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Stable checkpoint key for the `i`-th parameter: layer names repeat
/// across identical blocks, so entries are keyed by position + name.
fn entry_key(index: usize, p: &Param) -> String {
    format!("{index:04}:{}", p.name())
}

/// Serialize `params` to the v2 wire form, integrity footer included.
fn encode_params(params: &[Param]) -> Vec<u8> {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for (i, p) in params.iter().enumerate() {
        let key = entry_key(i, p);
        let name = key.as_bytes();
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name);
        let value = p.get();
        buf.extend_from_slice(&(value.rank() as u32).to_le_bytes());
        for &d in value.dims() {
            buf.extend_from_slice(&(d as u64).to_le_bytes());
        }
        buf.extend_from_slice(&(value.numel() as u64).to_le_bytes());
        for &v in value.data() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(FOOTER_MAGIC);
    buf
}

/// Save parameters to `path`, keyed by position + name (a model's
/// `params()` order is deterministic for a given architecture).
///
/// Crash-safe: the serialized bytes (CRC footer included) are written to
/// a same-directory temp file, fsynced, and atomically renamed over
/// `path` — a crash at any instant leaves either the old generation or
/// the new one on disk, never a torn file.
pub fn save_params(path: impl AsRef<Path>, params: &[Param]) -> Result<(), CheckpointError> {
    save_params_with(path, params, &NoFaults)
}

/// [`save_params`] with a fault injector on the write path — the hook the
/// `wr-fault` recovery tests drive (injected I/O errors surface as
/// [`CheckpointError::Io`]; injected corruption lands on disk and must be
/// rejected by the next [`load_params`]).
pub fn save_params_with(
    path: impl AsRef<Path>,
    params: &[Param],
    injector: &dyn FaultInjector,
) -> Result<(), CheckpointError> {
    let bytes = encode_params(params);
    write_atomic_with(path, &bytes, injector, 0)?;
    Ok(())
}

/// Verify the integrity footer and return the payload (header + entries)
/// it seals.
fn check_footer(raw: &[u8]) -> Result<&[u8], CheckpointError> {
    if raw.len() < FOOTER_LEN + 4 {
        return Err(CheckpointError::Corrupt(format!(
            "file too short for a sealed checkpoint ({} bytes)",
            raw.len()
        )));
    }
    let (payload, footer) = raw.split_at(raw.len() - FOOTER_LEN);
    if &footer[4..] != FOOTER_MAGIC {
        return Err(CheckpointError::Corrupt(
            "missing integrity footer (truncated file, or a pre-v2 checkpoint)".into(),
        ));
    }
    let stored = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
    let actual = crc32(payload);
    if stored != actual {
        return Err(CheckpointError::Corrupt(format!(
            "crc mismatch: footer {stored:08x} vs payload {actual:08x}"
        )));
    }
    Ok(payload)
}

/// Load all entries of a checkpoint into a name → tensor map.
///
/// The integrity footer is verified first: a file that fails its CRC is
/// rejected with [`CheckpointError::Corrupt`] before any entry is
/// decoded. The map is a `BTreeMap` so any caller that iterates it
/// (printing, diffing, re-serializing) sees a deterministic key order.
pub fn load_params(path: impl AsRef<Path>) -> Result<BTreeMap<String, Tensor>, CheckpointError> {
    let mut input = File::open(path)?;
    let mut raw = Vec::new();
    input.read_to_end(&mut raw)?;
    let payload = check_footer(&raw)?;
    let mut buf = Cursor { buf: payload };

    let magic = buf.take(4, "magic")?;
    if magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = buf.get_u32_le("version")?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!("unsupported version {version}")));
    }
    let n = buf.get_u32_le("entry count")? as usize;

    let mut map = BTreeMap::new();
    for _ in 0..n {
        let name_len = buf.get_u32_le("name length")? as usize;
        let name = String::from_utf8(buf.take(name_len, "name")?.to_vec())
            .map_err(|_| CheckpointError::Format("non-utf8 name".into()))?;
        let rank = buf.get_u32_le("rank")? as usize;
        // A hostile rank would otherwise drive a huge allocation below;
        // real models are rank ≤ 4.
        if rank > 32 {
            return Err(CheckpointError::Format(format!("entry {name}: absurd rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(buf.get_u64_le("dimension")? as usize);
        }
        let numel = buf.get_u64_le("value count")? as usize;
        let expected: Option<usize> =
            dims.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d));
        if expected != Some(numel) {
            return Err(CheckpointError::Format(format!(
                "entry {name}: {numel} values vs dims {dims:?}"
            )));
        }
        let byte_len = numel.checked_mul(4).ok_or_else(|| {
            CheckpointError::Format(format!("entry {name}: value count overflows"))
        })?;
        if buf.remaining() < byte_len {
            return Err(CheckpointError::Format("truncated values".into()));
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le("value")?);
        }
        map.insert(
            name,
            Tensor::try_from_vec(data, &dims)
                .map_err(|e| CheckpointError::Format(e.to_string()))?,
        );
    }
    Ok(map)
}

/// Scan `dir` for `*.wrck` checkpoints and return the newest one that
/// passes full validation (footer CRC and entry decode), or `None` when
/// no generation survives.
///
/// Generation order is the lexicographic filename order — checkpoint
/// writers embed a zero-padded counter (e.g. `epoch-000004.wrck`) so the
/// newest generation sorts last. A corrupt newest generation falls back
/// to the one before it instead of failing recovery outright.
pub fn latest_valid_checkpoint(dir: impl AsRef<Path>) -> Result<Option<PathBuf>, CheckpointError> {
    let mut candidates: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir.as_ref())? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("wrck") {
            candidates.push(path);
        }
    }
    candidates.sort();
    for path in candidates.into_iter().rev() {
        if load_params(&path).is_ok() {
            return Ok(Some(path));
        }
    }
    Ok(None)
}

/// Restore parameter values in place from a loaded map. Every parameter
/// must be present (by position+name key) with matching shape; extra
/// checkpoint entries are ignored (forward compatibility).
pub fn restore_params(
    params: &[Param],
    loaded: &BTreeMap<String, Tensor>,
) -> Result<(), CheckpointError> {
    for (i, p) in params.iter().enumerate() {
        let key = entry_key(i, p);
        let t = loaded.get(&key).ok_or_else(|| {
            CheckpointError::Mismatch(format!("parameter {key:?} missing from checkpoint"))
        })?;
        if t.dims() != p.dims() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {:?}: checkpoint {:?} vs model {:?}",
                p.name(),
                t.dims(),
                p.dims()
            )));
        }
        p.set(t.clone());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wrck_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let mut rng = Rng64::seed_from(1);
        let a = Param::new("layer.w", Tensor::randn(&[3, 4], &mut rng));
        let b = Param::new("layer.b", Tensor::randn(&[4], &mut rng));
        let path = tmp("roundtrip");
        save_params(&path, &[a.clone(), b.clone()]).unwrap();

        let loaded = load_params(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded["0000:layer.w"], a.get());
        assert_eq!(loaded["0001:layer.b"], b.get());

        // Mutate then restore.
        a.update(|t| t.scale_(0.0));
        restore_params(&[a.clone(), b], &loaded).unwrap();
        assert_eq!(a.get(), loaded["0000:layer.w"]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duplicate_layer_names_are_fine() {
        // Identical blocks produce identical layer names; position keys
        // disambiguate.
        let a = Param::new("block.w", Tensor::from_slice(&[1.0]));
        let b = Param::new("block.w", Tensor::from_slice(&[2.0]));
        let path = tmp("dup");
        save_params(&path, &[a.clone(), b.clone()]).unwrap();
        let loaded = load_params(&path).unwrap();
        a.update(|t| t.scale_(0.0));
        b.update(|t| t.scale_(0.0));
        restore_params(&[a.clone(), b.clone()], &loaded).unwrap();
        assert_eq!(a.get().data(), &[1.0]);
        assert_eq!(b.get().data(), &[2.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage_file() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        assert!(matches!(load_params(&path), Err(CheckpointError::Corrupt(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let mut rng = Rng64::seed_from(2);
        let a = Param::new("w", Tensor::randn(&[8, 8], &mut rng));
        let path = tmp("trunc");
        save_params(&path, &[a]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(load_params(&path), Err(CheckpointError::Corrupt(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_v1_file_without_footer() {
        // A v1 checkpoint is the v2 payload with version=1 and no footer.
        let path = tmp("v1");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match load_params(&path) {
            Err(CheckpointError::Corrupt(m)) => assert!(m.contains("pre-v2"), "got: {m}"),
            other => panic!("v1 file must be rejected as corrupt, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn every_truncation_point_errors_never_panics() {
        let mut rng = Rng64::seed_from(3);
        let a = Param::new("w", Tensor::randn(&[4, 3], &mut rng));
        let path = tmp("every_trunc");
        save_params(&path, &[a]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(load_params(&path).is_err(), "cut at {cut} must error");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn hostile_headers_error_instead_of_allocating() {
        let path = tmp("hostile");
        let craft = |entry_tail: &[u8]| {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC);
            bytes.extend_from_slice(&VERSION.to_le_bytes());
            bytes.extend_from_slice(&1u32.to_le_bytes()); // one entry
            bytes.extend_from_slice(entry_tail);
            // Seal with a *valid* footer so the hostile header — not the
            // CRC check — is what the loader has to survive.
            let crc = wr_fault::crc32(&bytes);
            bytes.extend_from_slice(&crc.to_le_bytes());
            bytes.extend_from_slice(FOOTER_MAGIC);
            std::fs::write(&path, &bytes).unwrap();
            load_params(&path)
        };
        // name_len far beyond the buffer.
        assert!(matches!(craft(&u32::MAX.to_le_bytes()), Err(CheckpointError::Format(_))));
        // Absurd rank.
        let mut tail = Vec::new();
        tail.extend_from_slice(&1u32.to_le_bytes()); // name_len = 1
        tail.push(b'w');
        tail.extend_from_slice(&u32::MAX.to_le_bytes()); // rank
        assert!(matches!(craft(&tail), Err(CheckpointError::Format(_))));
        // numel that would overflow numel * 4.
        let mut tail = Vec::new();
        tail.extend_from_slice(&1u32.to_le_bytes());
        tail.push(b'w');
        tail.extend_from_slice(&1u32.to_le_bytes()); // rank = 1
        tail.extend_from_slice(&u64::MAX.to_le_bytes()); // dim
        tail.extend_from_slice(&u64::MAX.to_le_bytes()); // numel
        assert!(matches!(craft(&tail), Err(CheckpointError::Format(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn restore_detects_shape_mismatch() {
        let a = Param::new("w", Tensor::zeros(&[2, 2]));
        let path = tmp("shape");
        save_params(&path, &[a]).unwrap();
        let loaded = load_params(&path).unwrap();
        let reshaped = Param::new("w", Tensor::zeros(&[4, 1]));
        assert!(matches!(
            restore_params(&[reshaped], &loaded),
            Err(CheckpointError::Mismatch(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn restore_detects_missing_param() {
        let a = Param::new("present", Tensor::zeros(&[1]));
        let path = tmp("missing");
        save_params(&path, &[a]).unwrap();
        let loaded = load_params(&path).unwrap();
        let other = Param::new("absent", Tensor::zeros(&[1]));
        assert!(matches!(
            restore_params(&[other], &loaded),
            Err(CheckpointError::Mismatch(_))
        ));
        std::fs::remove_file(path).ok();
    }
}
