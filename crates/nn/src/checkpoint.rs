//! Binary model checkpoints.
//!
//! Format (`WRCK` v1, little-endian, length-prefixed):
//!
//! ```text
//! magic "WRCK" | u32 version | u32 n_entries
//! per entry: u32 name_len | name bytes (utf-8)
//!            u32 n_dims   | u64 dims…
//!            u64 n_values | f32 values…
//! ```
//!
//! Buffered writes, single pass, no intermediate allocation beyond the
//! entry being encoded — checkpoints are the only large artifacts the
//! library persists, so the path is kept boring and fast.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::Param;
use wr_tensor::Tensor;

/// Little-endian reader over a byte slice (the offline workspace has no
/// `bytes` crate; this covers exactly what the checkpoint format needs).
///
/// Every getter is fallible: checkpoint files are untrusted input, so a
/// truncated or corrupted buffer must surface as a [`CheckpointError`],
/// never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() < n {
            return Err(CheckpointError::Format(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u32_le(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn get_u64_le(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let bytes = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    fn get_f32_le(&mut self, what: &str) -> Result<f32, CheckpointError> {
        let bytes = self.take(4, what)?;
        Ok(f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }
}

const MAGIC: &[u8; 4] = b"WRCK";
const VERSION: u32 = 1;

/// Errors from checkpoint IO.
#[derive(Debug)]
pub enum CheckpointError {
    Io(io::Error),
    /// Not a checkpoint file / wrong version.
    Format(String),
    /// A parameter expected by `restore` is absent or mis-shaped.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Stable checkpoint key for the `i`-th parameter: layer names repeat
/// across identical blocks, so entries are keyed by position + name.
fn entry_key(index: usize, p: &Param) -> String {
    format!("{index:04}:{}", p.name())
}

/// Save parameters to `path`, keyed by position + name (a model's
/// `params()` order is deterministic for a given architecture).
pub fn save_params(path: impl AsRef<Path>, params: &[Param]) -> Result<(), CheckpointError> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&(params.len() as u32).to_le_bytes())?;
    let mut buf: Vec<u8> = Vec::new();
    for (i, p) in params.iter().enumerate() {
        buf.clear();
        let key = entry_key(i, p);
        let name = key.as_bytes();
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name);
        let value = p.get();
        buf.extend_from_slice(&(value.rank() as u32).to_le_bytes());
        for &d in value.dims() {
            buf.extend_from_slice(&(d as u64).to_le_bytes());
        }
        buf.extend_from_slice(&(value.numel() as u64).to_le_bytes());
        for &v in value.data() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        out.write_all(&buf)?;
    }
    out.flush()?;
    Ok(())
}

/// Load all entries of a checkpoint into a name → tensor map.
///
/// The map is a `BTreeMap` so any caller that iterates it (printing,
/// diffing, re-serializing) sees a deterministic key order.
pub fn load_params(path: impl AsRef<Path>) -> Result<BTreeMap<String, Tensor>, CheckpointError> {
    let mut input = BufReader::new(File::open(path)?);
    let mut raw = Vec::new();
    input.read_to_end(&mut raw)?;
    let mut buf = Cursor { buf: &raw[..] };

    let magic = buf.take(4, "magic")?;
    if magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = buf.get_u32_le("version")?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!("unsupported version {version}")));
    }
    let n = buf.get_u32_le("entry count")? as usize;

    let mut map = BTreeMap::new();
    for _ in 0..n {
        let name_len = buf.get_u32_le("name length")? as usize;
        let name = String::from_utf8(buf.take(name_len, "name")?.to_vec())
            .map_err(|_| CheckpointError::Format("non-utf8 name".into()))?;
        let rank = buf.get_u32_le("rank")? as usize;
        // A hostile rank would otherwise drive a huge allocation below;
        // real models are rank ≤ 4.
        if rank > 32 {
            return Err(CheckpointError::Format(format!("entry {name}: absurd rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(buf.get_u64_le("dimension")? as usize);
        }
        let numel = buf.get_u64_le("value count")? as usize;
        let expected: Option<usize> =
            dims.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d));
        if expected != Some(numel) {
            return Err(CheckpointError::Format(format!(
                "entry {name}: {numel} values vs dims {dims:?}"
            )));
        }
        let byte_len = numel.checked_mul(4).ok_or_else(|| {
            CheckpointError::Format(format!("entry {name}: value count overflows"))
        })?;
        if buf.remaining() < byte_len {
            return Err(CheckpointError::Format("truncated values".into()));
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le("value")?);
        }
        map.insert(
            name,
            Tensor::try_from_vec(data, &dims)
                .map_err(|e| CheckpointError::Format(e.to_string()))?,
        );
    }
    Ok(map)
}

/// Restore parameter values in place from a loaded map. Every parameter
/// must be present (by position+name key) with matching shape; extra
/// checkpoint entries are ignored (forward compatibility).
pub fn restore_params(
    params: &[Param],
    loaded: &BTreeMap<String, Tensor>,
) -> Result<(), CheckpointError> {
    for (i, p) in params.iter().enumerate() {
        let key = entry_key(i, p);
        let t = loaded.get(&key).ok_or_else(|| {
            CheckpointError::Mismatch(format!("parameter {key:?} missing from checkpoint"))
        })?;
        if t.dims() != p.dims() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {:?}: checkpoint {:?} vs model {:?}",
                p.name(),
                t.dims(),
                p.dims()
            )));
        }
        p.set(t.clone());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wrck_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let mut rng = Rng64::seed_from(1);
        let a = Param::new("layer.w", Tensor::randn(&[3, 4], &mut rng));
        let b = Param::new("layer.b", Tensor::randn(&[4], &mut rng));
        let path = tmp("roundtrip");
        save_params(&path, &[a.clone(), b.clone()]).unwrap();

        let loaded = load_params(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded["0000:layer.w"], a.get());
        assert_eq!(loaded["0001:layer.b"], b.get());

        // Mutate then restore.
        a.update(|t| t.scale_(0.0));
        restore_params(&[a.clone(), b], &loaded).unwrap();
        assert_eq!(a.get(), loaded["0000:layer.w"]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duplicate_layer_names_are_fine() {
        // Identical blocks produce identical layer names; position keys
        // disambiguate.
        let a = Param::new("block.w", Tensor::from_slice(&[1.0]));
        let b = Param::new("block.w", Tensor::from_slice(&[2.0]));
        let path = tmp("dup");
        save_params(&path, &[a.clone(), b.clone()]).unwrap();
        let loaded = load_params(&path).unwrap();
        a.update(|t| t.scale_(0.0));
        b.update(|t| t.scale_(0.0));
        restore_params(&[a.clone(), b.clone()], &loaded).unwrap();
        assert_eq!(a.get().data(), &[1.0]);
        assert_eq!(b.get().data(), &[2.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage_file() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        assert!(matches!(load_params(&path), Err(CheckpointError::Format(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let mut rng = Rng64::seed_from(2);
        let a = Param::new("w", Tensor::randn(&[8, 8], &mut rng));
        let path = tmp("trunc");
        save_params(&path, &[a]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(load_params(&path), Err(CheckpointError::Format(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn every_truncation_point_errors_never_panics() {
        let mut rng = Rng64::seed_from(3);
        let a = Param::new("w", Tensor::randn(&[4, 3], &mut rng));
        let path = tmp("every_trunc");
        save_params(&path, &[a]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(load_params(&path).is_err(), "cut at {cut} must error");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn hostile_headers_error_instead_of_allocating() {
        let path = tmp("hostile");
        let craft = |entry_tail: &[u8]| {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC);
            bytes.extend_from_slice(&VERSION.to_le_bytes());
            bytes.extend_from_slice(&1u32.to_le_bytes()); // one entry
            bytes.extend_from_slice(entry_tail);
            std::fs::write(&path, &bytes).unwrap();
            load_params(&path)
        };
        // name_len far beyond the buffer.
        assert!(matches!(craft(&u32::MAX.to_le_bytes()), Err(CheckpointError::Format(_))));
        // Absurd rank.
        let mut tail = Vec::new();
        tail.extend_from_slice(&1u32.to_le_bytes()); // name_len = 1
        tail.push(b'w');
        tail.extend_from_slice(&u32::MAX.to_le_bytes()); // rank
        assert!(matches!(craft(&tail), Err(CheckpointError::Format(_))));
        // numel that would overflow numel * 4.
        let mut tail = Vec::new();
        tail.extend_from_slice(&1u32.to_le_bytes());
        tail.push(b'w');
        tail.extend_from_slice(&1u32.to_le_bytes()); // rank = 1
        tail.extend_from_slice(&u64::MAX.to_le_bytes()); // dim
        tail.extend_from_slice(&u64::MAX.to_le_bytes()); // numel
        assert!(matches!(craft(&tail), Err(CheckpointError::Format(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn restore_detects_shape_mismatch() {
        let a = Param::new("w", Tensor::zeros(&[2, 2]));
        let path = tmp("shape");
        save_params(&path, &[a]).unwrap();
        let loaded = load_params(&path).unwrap();
        let reshaped = Param::new("w", Tensor::zeros(&[4, 1]));
        assert!(matches!(
            restore_params(&[reshaped], &loaded),
            Err(CheckpointError::Mismatch(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn restore_detects_missing_param() {
        let a = Param::new("present", Tensor::zeros(&[1]));
        let path = tmp("missing");
        save_params(&path, &[a]).unwrap();
        let loaded = load_params(&path).unwrap();
        let other = Param::new("absent", Tensor::zeros(&[1]));
        assert!(matches!(
            restore_params(&[other], &loaded),
            Err(CheckpointError::Mismatch(_))
        ));
        std::fs::remove_file(path).ok();
    }
}
