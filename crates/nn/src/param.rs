//! Shared trainable parameters.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use wr_tensor::Tensor;

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

struct ParamInner {
    id: u64,
    name: String,
    value: RefCell<Tensor>,
}

/// A trainable tensor shared between a module and the optimizer.
///
/// Cloning a `Param` clones the handle, not the data; all clones see the
/// same underlying tensor. Identity (for optimizer state and session
/// de-duplication) is the stable `id`, unique per allocation.
#[derive(Clone)]
pub struct Param {
    inner: Rc<ParamInner>,
}

impl Param {
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Param {
            inner: Rc::new(ParamInner {
                id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
                name: name.into(),
                value: RefCell::new(value),
            }),
        }
    }

    /// Stable unique id of this parameter allocation.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Copy of the current value.
    pub fn get(&self) -> Tensor {
        self.inner.value.borrow().clone()
    }

    /// Replace the value (optimizer update).
    pub fn set(&self, value: Tensor) {
        let mut slot = self.inner.value.borrow_mut();
        debug_assert_eq!(
            slot.dims(),
            value.dims(),
            "Param::set must preserve shape for {}",
            self.inner.name
        );
        *slot = value;
    }

    /// Apply an in-place update to the value.
    pub fn update(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.inner.value.borrow_mut());
    }

    pub fn dims(&self) -> Vec<usize> {
        self.inner.value.borrow().dims().to_vec()
    }

    pub fn numel(&self) -> usize {
        self.inner.value.borrow().numel()
    }
}

impl std::fmt::Debug for Param {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Param(#{} {:?} {:?})",
            self.inner.id,
            self.inner.name,
            self.dims()
        )
    }
}

/// Anything that owns trainable parameters.
pub trait Module {
    /// All parameters, including those of submodules.
    fn params(&self) -> Vec<Param>;

    /// Total trainable scalar count (Table IX's `#Params`).
    fn param_count(&self) -> usize {
        self.params().iter().map(Param::numel).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_clones_share() {
        let a = Param::new("a", Tensor::zeros(&[2]));
        let b = Param::new("b", Tensor::zeros(&[2]));
        assert_ne!(a.id(), b.id());
        let a2 = a.clone();
        assert_eq!(a.id(), a2.id());
        a.set(Tensor::from_slice(&[1.0, 2.0]));
        assert_eq!(a2.get().data(), &[1.0, 2.0]);
    }

    #[test]
    fn update_in_place() {
        let p = Param::new("p", Tensor::ones(&[3]));
        p.update(|t| t.scale_(2.0));
        assert_eq!(p.get().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "preserve shape")]
    fn set_shape_guard() {
        let p = Param::new("p", Tensor::ones(&[3]));
        p.set(Tensor::ones(&[4]));
    }
}
