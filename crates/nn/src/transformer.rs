//! Transformer encoder (SASRec-style sequence encoder).

use crate::{
    attention::{bidirectional_padding_mask, causal_padding_mask},
    Embedding, LayerNorm, Linear, Module, MultiHeadSelfAttention, Param, Session,
};
use wr_autograd::Var;
use wr_tensor::{Rng64, Tensor};

/// One post-norm Transformer block: self-attention and a pointwise
/// feed-forward network, each wrapped in residual + LayerNorm (the RecBole
/// SASRec layout the paper builds on).
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    pub attn: MultiHeadSelfAttention,
    pub ln1: LayerNorm,
    pub ff1: Linear,
    pub ff2: Linear,
    pub ln2: LayerNorm,
    pub dropout: f32,
}

impl TransformerBlock {
    pub fn new(dim: usize, heads: usize, ff_mult: usize, dropout: f32, rng: &mut Rng64) -> Self {
        TransformerBlock {
            attn: MultiHeadSelfAttention::new(dim, heads, dropout, rng),
            ln1: LayerNorm::new(dim),
            ff1: Linear::new(dim, dim * ff_mult, true, rng),
            ff2: Linear::new(dim * ff_mult, dim, true, rng),
            ln2: LayerNorm::new(dim),
            dropout,
        }
    }

    pub fn forward(&self, sess: &mut Session, x: Var, batch: usize, seq: usize, mask: &Tensor) -> Var {
        let g = sess.graph;
        // Attention sublayer.
        let a = self.attn.forward(sess, x, batch, seq, mask);
        let a = sess.dropout(a, self.dropout);
        let x = self.ln1.forward(sess, g.add(x, a));
        // Feed-forward sublayer.
        let h = self.ff1.forward(sess, x);
        let h = g.gelu(h);
        let h = sess.dropout(h, self.dropout);
        let h = self.ff2.forward(sess, h);
        let h = sess.dropout(h, self.dropout);
        self.ln2.forward(sess, g.add(x, h))
    }
}

impl Module for TransformerBlock {
    fn params(&self) -> Vec<Param> {
        let mut ps = self.attn.params();
        ps.extend(self.ln1.params());
        ps.extend(self.ff1.params());
        ps.extend(self.ff2.params());
        ps.extend(self.ln2.params());
        ps
    }
}

/// Configuration of the sequence encoder shared by every model in the zoo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformerConfig {
    pub dim: usize,
    pub heads: usize,
    pub blocks: usize,
    pub ff_mult: usize,
    pub max_seq: usize,
    pub dropout: f32,
    /// Bidirectional attention (BERT4Rec's Cloze setting) instead of the
    /// causal mask SASRec uses.
    pub bidirectional: bool,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        // Scaled-down analogue of the paper's (d=300, 2 blocks, 2 heads,
        // seq 50) setting.
        TransformerConfig {
            dim: 64,
            heads: 2,
            blocks: 2,
            ff_mult: 2,
            max_seq: 30,
            dropout: 0.2,
            bidirectional: false,
        }
    }
}

/// SASRec-style causal Transformer over item-embedding sequences.
///
/// Adds learned positional embeddings, applies input LayerNorm + dropout,
/// runs the block stack, and returns the hidden state at the last real
/// position of every sequence — the user representation `s` of Eq. (2).
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    pub blocks: Vec<TransformerBlock>,
    pub pos: Embedding,
    pub input_ln: LayerNorm,
    pub config: TransformerConfig,
}

impl TransformerEncoder {
    pub fn new(config: TransformerConfig, rng: &mut Rng64) -> Self {
        let blocks = (0..config.blocks)
            .map(|_| TransformerBlock::new(config.dim, config.heads, config.ff_mult, config.dropout, rng))
            .collect();
        TransformerEncoder {
            blocks,
            pos: Embedding::new(config.max_seq, config.dim, rng),
            input_ln: LayerNorm::new(config.dim),
            config,
        }
    }

    /// Full hidden states `[batch*seq, dim]` for flattened item embeddings
    /// `x` (`[batch*seq, dim]`, left-padded) with true `lengths`.
    pub fn forward_hidden(
        &self,
        sess: &mut Session,
        x: Var,
        batch: usize,
        seq: usize,
        lengths: &[usize],
    ) -> Var {
        let g = sess.graph;
        assert!(seq <= self.config.max_seq, "sequence longer than max_seq");
        // Positional embeddings, tiled across the batch.
        let pos_idx: Vec<usize> = (0..batch).flat_map(|_| 0..seq).collect();
        let p = self.pos.forward(sess, &pos_idx);
        let mut h = g.add(x, p);
        h = self.input_ln.forward(sess, h);
        h = sess.dropout(h, self.config.dropout);

        let mask = if self.config.bidirectional {
            bidirectional_padding_mask(batch, seq, lengths)
        } else {
            causal_padding_mask(batch, seq, lengths)
        };
        for block in &self.blocks {
            h = block.forward(sess, h, batch, seq, &mask);
        }
        h
    }

    /// User representations `[batch, dim]`: the hidden state at each
    /// sequence's last real position.
    pub fn forward_user(
        &self,
        sess: &mut Session,
        x: Var,
        batch: usize,
        seq: usize,
        lengths: &[usize],
    ) -> Var {
        let h = self.forward_hidden(sess, x, batch, seq, lengths);
        // Left padding ⇒ the last real position is always `seq - 1`.
        let last_rows: Vec<usize> = (0..batch).map(|b| b * seq + (seq - 1)).collect();
        sess.graph.gather_rows(h, &last_rows)
    }
}

impl Module for TransformerEncoder {
    fn params(&self) -> Vec<Param> {
        let mut ps: Vec<Param> = self.blocks.iter().flat_map(|b| b.params()).collect();
        ps.extend(self.pos.params());
        ps.extend(self.input_ln.params());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_autograd::Graph;

    fn tiny_config() -> TransformerConfig {
        TransformerConfig {
            dim: 8,
            heads: 2,
            blocks: 2,
            ff_mult: 2,
            max_seq: 6,
            dropout: 0.0,
            bidirectional: false,
        }
    }

    #[test]
    fn encoder_shapes() {
        let mut rng = Rng64::seed_from(1);
        let enc = TransformerEncoder::new(tiny_config(), &mut rng);
        let (b, t) = (3, 6);
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(Tensor::randn(&[b * t, 8], &mut rng));
        let h = enc.forward_hidden(&mut s, x, b, t, &[6, 4, 2]);
        assert_eq!(g.dims(h), vec![b * t, 8]);
        let g2 = Graph::new();
        let mut s2 = Session::eval(&g2);
        let x2 = g2.constant(Tensor::randn(&[b * t, 8], &mut rng));
        let u = enc.forward_user(&mut s2, x2, b, t, &[6, 4, 2]);
        assert_eq!(g2.dims(u), vec![b, 8]);
    }

    #[test]
    fn deterministic_in_eval_mode() {
        let mut rng = Rng64::seed_from(2);
        let enc = TransformerEncoder::new(tiny_config(), &mut rng);
        let x = Tensor::randn(&[6, 8], &mut rng);
        let run = || {
            let g = Graph::new();
            let mut s = Session::eval(&g);
            let xv = g.constant(x.clone());
            let u = enc.forward_user(&mut s, xv, 1, 6, &[3]);
            g.value(u)
        };
        assert_eq!(run().data(), run().data());
    }

    #[test]
    fn gradients_flow_to_all_params() {
        let mut rng = Rng64::seed_from(3);
        let enc = TransformerEncoder::new(tiny_config(), &mut rng);
        let g = Graph::new();
        let mut s = Session::train(&g, Rng64::seed_from(4));
        let x = g.constant(Tensor::randn(&[6, 8], &mut rng));
        let u = enc.forward_user(&mut s, x, 1, 6, &[6]);
        let loss = g.sum_all(u);
        g.backward(loss);
        let mut with_grad = 0;
        for (_, v) in s.bindings() {
            if g.grad(*v).is_some() {
                with_grad += 1;
            }
        }
        assert_eq!(with_grad, s.bindings().len(), "some parameters received no gradient");
        assert!(with_grad > 10);
    }

    #[test]
    fn param_count_matches_structure() {
        let mut rng = Rng64::seed_from(5);
        let cfg = tiny_config();
        let enc = TransformerEncoder::new(cfg, &mut rng);
        let d = cfg.dim;
        let per_block = 4 * (d * d + d)                  // attention
            + 2 * 2 * d                                   // two layernorms
            + (d * d * cfg.ff_mult + d * cfg.ff_mult)     // ff1
            + (d * cfg.ff_mult * d + d); // ff2
        let expected = cfg.blocks * per_block + cfg.max_seq * d + 2 * d;
        assert_eq!(enc.param_count(), expected);
    }
}
