//! Neural-network building blocks for the WhitenRec model zoo.
//!
//! Layers own their weights as shared [`Param`] handles. A training step
//! opens a [`Session`] over a fresh autograd [`Graph`](wr_autograd::Graph);
//! layers bind their parameters into the graph through the session, which
//! de-duplicates bindings so *shared* modules (e.g. WhitenRec+'s shared
//! projection head applied to two whitened views) accumulate gradients
//! correctly.
//!
//! ```
//! use wr_nn::{Linear, Module, Session};
//! use wr_autograd::Graph;
//! use wr_tensor::{Rng64, Tensor};
//!
//! let mut rng = Rng64::seed_from(0);
//! let layer = Linear::new(4, 2, true, &mut rng);
//! let g = Graph::new();
//! let mut sess = Session::train(&g, Rng64::seed_from(1));
//! let x = g.constant(Tensor::ones(&[3, 4]));
//! let y = layer.forward(&mut sess, x);
//! assert_eq!(g.dims(y), vec![3, 2]);
//! ```

mod attention;
mod checkpoint;
mod embedding;
mod gru;
mod linear;
mod moe;
mod norm;
mod param;
mod session;
mod transformer;

pub use attention::{bidirectional_padding_mask, causal_padding_mask, MultiHeadSelfAttention};
pub use checkpoint::{
    latest_valid_checkpoint, load_params, restore_params, save_params, save_params_with,
    CheckpointError,
};
pub use embedding::{Embedding, FrozenTable};
pub use gru::{Gru, GruStack};
pub use linear::{Linear, Mlp, ProjectionHead};
pub use moe::MoEAdaptor;
pub use norm::LayerNorm;
pub use param::{Module, Param};
pub use session::Session;
pub use transformer::{TransformerBlock, TransformerConfig, TransformerEncoder};
