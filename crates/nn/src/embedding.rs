//! Trainable and frozen embedding tables.

use crate::{Module, Param, Session};
use wr_autograd::Var;
use wr_tensor::{Initializer, Rng64, Tensor};

/// Trainable embedding table `[vocab, dim]` (ID embeddings, positions).
#[derive(Debug, Clone)]
pub struct Embedding {
    pub table: Param,
}

impl Embedding {
    pub fn new(vocab: usize, dim: usize, rng: &mut Rng64) -> Self {
        // RecBole-style init: N(0, 0.02) like the original SASRec code.
        let table = Param::new(
            format!("embedding[{vocab}x{dim}]"),
            Initializer::Normal { std: 0.02 }.init_matrix(vocab, dim, rng),
        );
        Embedding { table }
    }

    pub fn forward(&self, sess: &mut Session, indices: &[usize]) -> Var {
        let t = sess.bind(&self.table);
        sess.graph.gather_rows(t, indices)
    }

    pub fn vocab(&self) -> usize {
        self.table.dims()[0]
    }

    pub fn dim(&self) -> usize {
        self.table.dims()[1]
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<Param> {
        vec![self.table.clone()]
    }
}

/// Frozen lookup table: pre-trained (whitened) text embeddings.
///
/// Never receives gradients and contributes zero trainable parameters —
/// this is what makes the paper's text-only models so much smaller than
/// their `+ID` counterparts (Table IX).
#[derive(Debug, Clone)]
pub struct FrozenTable {
    table: Tensor,
}

impl FrozenTable {
    /// `table` is `[vocab, dim]`, rows are item vectors.
    pub fn new(table: Tensor) -> Self {
        assert!(table.rank() == 2, "FrozenTable expects a matrix");
        FrozenTable { table }
    }

    pub fn forward(&self, sess: &mut Session, indices: &[usize]) -> Var {
        // Gathering eagerly (host side) keeps the huge table off the tape.
        let rows = self.table.gather_rows(indices);
        sess.graph.constant(rows)
    }

    /// The full table as a constant node (for whole-catalog scoring).
    pub fn all(&self, sess: &mut Session) -> Var {
        sess.graph.constant(self.table.clone())
    }

    pub fn raw(&self) -> &Tensor {
        &self.table
    }

    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    pub fn dim(&self) -> usize {
        self.table.cols()
    }
}

impl Module for FrozenTable {
    fn params(&self) -> Vec<Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_autograd::Graph;

    #[test]
    fn embedding_lookup_and_grads() {
        let mut rng = Rng64::seed_from(1);
        let emb = Embedding::new(10, 4, &mut rng);
        assert_eq!(emb.vocab(), 10);
        assert_eq!(emb.dim(), 4);
        assert_eq!(emb.param_count(), 40);

        let g = Graph::new();
        let mut s = Session::train(&g, Rng64::seed_from(2));
        let e = emb.forward(&mut s, &[3, 3, 7]);
        assert_eq!(g.dims(e), vec![3, 4]);
        let loss = g.sum_all(e);
        g.backward(loss);
        let (_, var) = &s.bindings()[0];
        let grad = g.grad(*var).unwrap();
        // rows 3 (twice) and 7 get gradient, others zero
        assert_eq!(grad.row(3), &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(grad.row(7), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(grad.row(0), &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn frozen_table_no_params_no_grads() {
        let table = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let ft = FrozenTable::new(table);
        assert_eq!(ft.param_count(), 0);

        let g = Graph::new();
        let mut s = Session::train(&g, Rng64::seed_from(3));
        let e = ft.forward(&mut s, &[2, 0]);
        assert_eq!(g.value(e).row(0), &[6.0, 7.0, 8.0]);
        assert!(s.bindings().is_empty());
    }
}
