//! Corruption sweep for the WRCK v2 checkpoint format.
//!
//! The crash-safety contract (ISSUE: fault-injection PR) is that a torn
//! or bit-flipped checkpoint is *never* silently loaded: every mutation
//! of the on-disk bytes must surface as a typed error, and recovery must
//! fall back across generations via `latest_valid_checkpoint`.

use wr_fault::{FaultPlan, FaultRates};
use wr_nn::{
    latest_valid_checkpoint, load_params, save_params, save_params_with, CheckpointError, Param,
};
use wr_tensor::{Rng64, Tensor};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wrck_sweep_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_params(seed: u64) -> Vec<Param> {
    let mut rng = Rng64::seed_from(seed);
    vec![
        Param::new("encoder.w", Tensor::randn(&[4, 3], &mut rng)),
        Param::new("encoder.b", Tensor::randn(&[3], &mut rng)),
        Param::new("head.w", Tensor::randn(&[3, 2], &mut rng)),
    ]
}

#[test]
fn every_truncation_point_is_rejected() {
    let dir = tmp_dir("trunc");
    let path = dir.join("model.wrck");
    save_params(&path, &sample_params(11)).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.len() > 20, "fixture too small to sweep");
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            load_params(&path).is_err(),
            "truncation at byte {cut}/{} must be rejected",
            bytes.len()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let dir = tmp_dir("bitflip");
    let path = dir.join("model.wrck");
    save_params(&path, &sample_params(12)).unwrap();
    let clean = std::fs::read(&path).unwrap();
    // A flip in the payload trips the CRC, a flip in the stored CRC
    // mismatches the payload, a flip in either magic breaks framing:
    // no position may load.
    for byte in 0..clean.len() {
        for bit in 0..8 {
            let mut bad = clean.clone();
            bad[byte] ^= 1 << bit;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                load_params(&path).is_err(),
                "bit flip at {byte}:{bit} was silently accepted"
            );
        }
    }
    // The untouched file still loads — the sweep didn't break the fixture.
    std::fs::write(&path, &clean).unwrap();
    assert_eq!(load_params(&path).unwrap().len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flips_in_payload_report_corrupt_not_format() {
    let dir = tmp_dir("typed");
    let path = dir.join("model.wrck");
    save_params(&path, &sample_params(13)).unwrap();
    let clean = std::fs::read(&path).unwrap();
    // Payload region: everything before the 8-byte footer. Flips there
    // must be caught by the CRC (Corrupt), never reach entry decoding.
    for byte in (0..clean.len() - 8).step_by(7) {
        let mut bad = clean.clone();
        bad[byte] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        match load_params(&path) {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!("flip at byte {byte}: expected Corrupt, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn latest_valid_checkpoint_falls_back_across_generations() {
    let dir = tmp_dir("generations");
    for epoch in 1..=3u32 {
        let path = dir.join(format!("epoch-{epoch:06}.wrck"));
        save_params(&path, &sample_params(epoch as u64)).unwrap();
    }
    let newest = dir.join("epoch-000003.wrck");
    assert_eq!(latest_valid_checkpoint(&dir).unwrap().unwrap(), newest);

    // Corrupt the newest generation: recovery falls back to epoch 2.
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();
    assert_eq!(
        latest_valid_checkpoint(&dir).unwrap().unwrap(),
        dir.join("epoch-000002.wrck")
    );

    // Truncate epoch 2 as well: falls back to epoch 1.
    let g2 = dir.join("epoch-000002.wrck");
    let bytes = std::fs::read(&g2).unwrap();
    std::fs::write(&g2, &bytes[..bytes.len() - 3]).unwrap();
    assert_eq!(
        latest_valid_checkpoint(&dir).unwrap().unwrap(),
        dir.join("epoch-000001.wrck")
    );

    // Destroy every generation: recovery reports None, not an error.
    std::fs::write(dir.join("epoch-000001.wrck"), b"gone").unwrap();
    assert_eq!(latest_valid_checkpoint(&dir).unwrap(), None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn latest_valid_checkpoint_ignores_other_files_and_empty_dirs() {
    let dir = tmp_dir("mixed");
    assert_eq!(latest_valid_checkpoint(&dir).unwrap(), None);
    std::fs::write(dir.join("notes.txt"), b"not a checkpoint").unwrap();
    std::fs::write(dir.join("metrics.json"), b"{}").unwrap();
    assert_eq!(latest_valid_checkpoint(&dir).unwrap(), None);
    let path = dir.join("epoch-000001.wrck");
    save_params(&path, &sample_params(7)).unwrap();
    assert_eq!(latest_valid_checkpoint(&dir).unwrap().unwrap(), path);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_write_fault_never_destroys_the_previous_generation() {
    let dir = tmp_dir("injected");
    let path = dir.join("model.wrck");
    let params = sample_params(21);
    save_params(&path, &params).unwrap();
    let good = std::fs::read(&path).unwrap();

    // Injected I/O error: the save fails, the old generation survives.
    let io_plan = FaultPlan::with_rates(
        5,
        FaultRates { io_error: 1.0, corrupt: 0.0, ..FaultRates::default() },
    );
    assert!(matches!(
        save_params_with(&path, &sample_params(22), &io_plan),
        Err(CheckpointError::Io(_))
    ));
    assert_eq!(std::fs::read(&path).unwrap(), good);
    assert_eq!(load_params(&path).unwrap().len(), 3);

    // Injected corruption: the save "succeeds" (the bytes are torn in
    // flight), but the CRC rejects the result on load — recovery then
    // falls back, it never consumes the damaged file.
    let corrupt_plan = FaultPlan::with_rates(
        5,
        FaultRates { io_error: 0.0, corrupt: 1.0, ..FaultRates::default() },
    );
    save_params_with(&path, &sample_params(23), &corrupt_plan).unwrap();
    assert!(load_params(&path).is_err(), "torn bytes must not load");
    assert!(io_plan.injected_total() >= 1);
    assert!(corrupt_plan.injected_total() >= 1);
    std::fs::remove_dir_all(&dir).ok();
}
