//! Cross-sequence isolation: results for one sequence must not depend on
//! what else is in the batch — the invariant that makes batched training
//! and single-sequence inference interchangeable.

use wr_autograd::Graph;
use wr_nn::{GruStack, Session, TransformerConfig, TransformerEncoder};
use wr_tensor::{Rng64, Tensor};

fn config() -> TransformerConfig {
    TransformerConfig {
        dim: 16,
        heads: 2,
        blocks: 2,
        ff_mult: 2,
        max_seq: 8,
        dropout: 0.0,
        bidirectional: false,
    }
}

#[test]
fn transformer_user_repr_is_batch_independent() {
    let mut rng = Rng64::seed_from(1);
    let enc = TransformerEncoder::new(config(), &mut rng);
    let seq_a = Tensor::randn(&[8, 16], &mut rng);
    let seq_b = Tensor::randn(&[8, 16], &mut rng);

    // Alone.
    let alone = {
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(seq_a.clone());
        g.value(enc.forward_user(&mut s, x, 1, 8, &[5]))
    };
    // Batched with an unrelated sequence.
    let batched = {
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(Tensor::concat_rows(&[&seq_a, &seq_b]));
        let u = enc.forward_user(&mut s, x, 2, 8, &[5, 8]);
        g.value(u)
    };
    for (a, b) in alone.row(0).iter().zip(batched.row(0)) {
        assert!((a - b).abs() < 1e-4, "batching changed the result: {a} vs {b}");
    }
}

#[test]
fn gru_user_repr_is_batch_independent() {
    let mut rng = Rng64::seed_from(2);
    let gru = GruStack::new(16, 12, 2, &mut rng);
    let seq_a = Tensor::randn(&[6, 16], &mut rng);
    let seq_b = Tensor::randn(&[6, 16], &mut rng).scale(3.0);

    let alone = {
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(seq_a.clone());
        g.value(gru.forward_user(&mut s, x, 1, 6, &[4]))
    };
    let batched = {
        let g = Graph::new();
        let mut s = Session::eval(&g);
        let x = g.constant(Tensor::concat_rows(&[&seq_a, &seq_b]));
        g.value(gru.forward_user(&mut s, x, 2, 6, &[4, 6]))
    };
    for (a, b) in alone.row(0).iter().zip(batched.row(0)) {
        assert!((a - b).abs() < 1e-4, "GRU batching changed the result");
    }
}

#[test]
fn transformer_respects_max_seq_assertion() {
    let mut rng = Rng64::seed_from(3);
    let enc = TransformerEncoder::new(config(), &mut rng);
    let g = Graph::new();
    let mut s = Session::eval(&g);
    let x = g.constant(Tensor::zeros(&[16, 16]));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        enc.forward_user(&mut s, x, 1, 16, &[16])
    }));
    assert!(result.is_err(), "seq > max_seq must be rejected");
}
