//! Pass 2 of the semantic analyzer: the workspace call graph and the
//! reachability rules built on it.
//!
//! Links every per-file symbol table ([`crate::symbols`]) into one graph:
//!
//! * **Resolution** is by name + arity. `Type::name(…)` path calls match
//!   the qualified definition exactly; `.name(…)` method calls link to
//!   *every* impl/trait method with that name and arity (a sound
//!   over-approximation — trait dispatch links all implementors); plain
//!   calls match free functions, preferring same-crate definitions when
//!   both exist (shadowed names). Calls with no candidate land in an
//!   explicit `unresolved` bucket that is counted and reportable — never
//!   silently dropped.
//! * **R6 panic-reachability** walks the graph from the declared hot-path
//!   root set (`ServeEngine::serve` / `try_serve`, `IvfIndex::search`,
//!   `batch_top_k`, and `parallel_*` closure bodies in the serving
//!   crates) and flags every panic site in a reachable non-kernel
//!   function, printing the full call chain from the root.
//! * **R7 lock-order** builds the lock-class nesting graph (acquisitions
//!   made while another guard is live, directly or through calls) and
//!   flags cycles and locks held across a `parallel_*` dispatch.
//! * **R8 hot-loop-alloc** flags allocation calls inside loops of
//!   hot-path-reachable functions.
//! * **R9 write-only-telemetry** flags calls that resolve exclusively to
//!   the obs read / export surface ([`TELEMETRY_READ_APIS`]) from any
//!   crate outside the sanctioned reader set (obs itself, the bench
//!   harness, the CLI binaries, wr-check). Serving code emits telemetry;
//!   only the scrape endpoint and exporters read it back.
//!
//! Kernel crates (R1's domain — their panic discipline is already owned
//! by the no-panic rule with documented `try_` siblings) and the
//! harness/linter crates are traversed for reachability but do not emit
//! R6/R8 findings; see DESIGN.md §5b.

use crate::rules::{Rule, Violation, KERNEL_CRATES};
use crate::symbols::{FileSymbols, FnDef, PARALLEL_FNS};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Crates whose `parallel_*` closure bodies are hot-path roots.
const CLOSURE_ROOT_CRATES: &[&str] = &["serve", "ann", "runtime", "obs", "gateway"];

/// The obs read / export surface guarded by R9. A call is flagged only
/// when *every* resolved candidate sits on this list — an ambiguous
/// method name (a `snapshot()` that may equally bind to
/// `Histogram::snapshot`) stays silent, keeping the rule sound under
/// name+arity resolution.
const TELEMETRY_READ_APIS: &[&str] = &[
    "Registry::snapshot",
    "Registry::to_json",
    "Tracer::events",
    "Tracer::to_chrome_json",
    "Tracer::to_jsonl",
    "FlightRecorder::events",
    "FlightRecorder::snapshot_json",
];

/// Crates allowed to read telemetry back (R9): obs owns the scrape
/// endpoint, bench and the crates/core CLI binaries export reports, and
/// wr-check is not serving code.
fn reads_telemetry_legitimately(krate: &str) -> bool {
    matches!(krate, "obs" | "bench" | "check" | "core" | "workspace")
}

/// Qualified names of the declared hot-path root set.
const HOT_ROOTS: &[&str] = &[
    "ServeEngine::serve",
    "ServeEngine::try_serve",
    "Gateway::serve",
    "Gateway::try_serve",
    "ReplicaSet::dispatch",
    "IvfIndex::search",
    "batch_top_k",
];

/// Fail-stop sinks the hot-path BFS does not traverse *through*: sealing
/// a flight dump happens on the way down (degradation, permanent panic,
/// overload), at most a handful of times per process, and is I/O-bound —
/// its callees are not request-path code. The sink itself stays hot (its
/// own body is still checked); only reachability through it is cut. A
/// callee that is also reachable on a genuine hot path keeps its
/// findings via that other chain.
const COLD_SINKS: &[&str] = &["FlightRecorder::trigger"];

/// A call the resolver could not bind to any workspace definition.
#[derive(Debug, Clone)]
pub struct UnresolvedCall {
    pub caller: String,
    pub callee: String,
    pub arity: usize,
    pub path: String,
    pub line: u32,
}

/// Aggregate numbers for the `wr-check/v2` report.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Non-test functions (incl. parallel-closure pseudo-functions).
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Call sites with no workspace candidate.
    pub unresolved: usize,
    /// Distinct unresolved callee names.
    pub unresolved_names: usize,
    /// Functions reachable from the hot-path root set.
    pub hot_functions: usize,
}

/// Result of the semantic pass.
pub struct Analysis {
    pub violations: Vec<Violation>,
    pub stats: GraphStats,
    pub unresolved: Vec<UnresolvedCall>,
}

struct Graph<'a> {
    /// (file index, fn index) per node, production functions only.
    nodes: Vec<(usize, usize)>,
    files: &'a [FileSymbols],
    edges: Vec<Vec<usize>>,
}

impl<'a> Graph<'a> {
    fn def(&self, n: usize) -> &'a FnDef {
        let (f, i) = self.nodes[n];
        &self.files[f].fns[i]
    }
    fn krate(&self, n: usize) -> &'a str {
        &self.files[self.nodes[n].0].krate
    }
    fn path(&self, n: usize) -> &'a str {
        &self.files[self.nodes[n].0].path
    }
}

/// Whether R6/R8 findings are reported for a crate. Kernel crates answer
/// to R1 (documented panicking wrappers with `try_` siblings); the
/// harness and the linter itself are not serving code.
fn reports_semantic(krate: &str) -> bool {
    !KERNEL_CRATES.contains(&krate) && !matches!(krate, "bench" | "check" | "workspace")
}

/// Run the semantic rules over the workspace symbol tables.
pub fn analyze(files: &[FileSymbols]) -> Analysis {
    // ---- collect production nodes ----
    let mut nodes: Vec<(usize, usize)> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (di, def) in file.fns.iter().enumerate() {
            if !def.is_test {
                nodes.push((fi, di));
            }
        }
    }
    let mut g = Graph { nodes, files, edges: Vec::new() };
    let n = g.nodes.len();

    // ---- resolution indexes ----
    let mut by_qual: BTreeMap<(&str, usize), Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<(&str, usize), Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<(&str, usize), Vec<usize>> = BTreeMap::new();
    let mut by_parent_qual: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let d = g.def(i);
        by_qual.entry((d.qual.as_str(), d.arity)).or_default().push(i);
        if d.has_self {
            methods.entry((d.name.as_str(), d.arity)).or_default().push(i);
        } else if d.qual == d.name {
            free.entry((d.name.as_str(), d.arity)).or_default().push(i);
        }
        if d.is_closure_root {
            if let Some(pos) = d.qual.rfind("::{closure@") {
                by_parent_qual.entry(&d.qual[..pos]).or_default().push(i);
            }
        }
    }

    // ---- resolve calls into edges ----
    let mut unresolved: Vec<UnresolvedCall> = Vec::new();
    let mut edge_count = 0usize;
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Edges from calls whose resolution is trustworthy (free fns, path
    // calls, `self.method()`). Bare `.method()` name-matching is a sound
    // over-approximation for panic reachability but far too coarse for
    // the lock analysis — `spans.len()` must not bind to `Tracer::len`.
    let mut reliable_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    // call-site → resolved targets, preserved for the lock analysis.
    let mut call_targets: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); n];
    for i in 0..n {
        let d = g.def(i);
        let caller_crate = g.krate(i);
        for (ci, call) in d.calls.iter().enumerate() {
            let mut targets: Vec<usize> = Vec::new();
            if let Some(recv) = &call.recv {
                // `Type::name(…)` — `Self` was resolved during extraction
                // only when syntactically present; resolve leftovers here.
                let qual = format!("{recv}::{}", call.name);
                if let Some(v) = by_qual.get(&(qual.as_str(), call.arity)) {
                    targets.extend(v.iter().copied());
                }
                if recv == "Self" {
                    // `Self::name` — match any method/assoc fn with the name.
                    if let Some(v) = methods.get(&(call.name.as_str(), call.arity)) {
                        targets.extend(v.iter().copied());
                    }
                }
                if targets.is_empty() {
                    // `wr_eval::rank(…)` / `crate::helper(…)` — a module
                    // path, not a type: bind to free fns in the named crate.
                    let crate_hint = match recv.as_str() {
                        "crate" | "self" | "super" => Some(caller_crate.to_string()),
                        r if r.starts_with("wr_") => Some(r["wr_".len()..].to_string()),
                        _ => None,
                    };
                    if let (Some(hint), Some(v)) =
                        (crate_hint, free.get(&(call.name.as_str(), call.arity)))
                    {
                        targets.extend(v.iter().copied().filter(|&t| g.krate(t) == hint));
                    }
                }
            } else if call.is_method {
                if let Some(v) = methods.get(&(call.name.as_str(), call.arity)) {
                    targets.extend(v.iter().copied());
                }
            } else {
                if let Some(v) = free.get(&(call.name.as_str(), call.arity)) {
                    // Same-crate definitions shadow cross-crate ones.
                    let same: Vec<usize> =
                        v.iter().copied().filter(|&t| g.krate(t) == caller_crate).collect();
                    targets.extend(if same.is_empty() { v.clone() } else { same });
                }
            }
            targets.sort_unstable();
            targets.dedup();
            if targets.is_empty() {
                unresolved.push(UnresolvedCall {
                    caller: d.qual.clone(),
                    callee: call.name.clone(),
                    arity: call.arity,
                    path: g.path(i).to_string(),
                    line: call.line,
                });
            } else {
                edge_count += targets.len();
                edges[i].extend(targets.iter().copied());
                if !call.is_method || call.on_self {
                    reliable_edges[i].extend(targets.iter().copied());
                }
            }
            call_targets[i].push((ci, targets));
        }
        // Parallel-closure bodies are invoked by their enclosing function.
        if let Some(v) = by_parent_qual.get(d.qual.as_str()) {
            for &t in v {
                if g.nodes[t].0 == g.nodes[i].0 && t != i {
                    edges[i].push(t);
                    reliable_edges[i].push(t);
                    edge_count += 1;
                }
            }
        }
    }
    for e in edges.iter_mut().chain(reliable_edges.iter_mut()) {
        e.sort_unstable();
        e.dedup();
    }
    g.edges = edges;

    // ---- hot-path reachability (BFS with parent pointers) ----
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut hot: Vec<bool> = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for i in 0..n {
        let d = g.def(i);
        let is_root = HOT_ROOTS.contains(&d.qual.as_str())
            || (d.is_closure_root && CLOSURE_ROOT_CRATES.contains(&g.krate(i)));
        if is_root {
            hot[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(u) = queue.pop_front() {
        if COLD_SINKS.contains(&g.def(u).qual.as_str()) {
            continue;
        }
        for &v in &g.edges[u] {
            if !hot[v] {
                hot[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    let chain = |mut i: usize| -> String {
        let mut parts = vec![g.def(i).qual.clone()];
        while let Some(p) = parent[i] {
            parts.push(g.def(p).qual.clone());
            i = p;
        }
        parts.reverse();
        parts.join(" → ")
    };

    let mut violations: Vec<Violation> = Vec::new();

    // ---- R6: panic sites in hot-reachable non-kernel functions ----
    for i in 0..n {
        if !hot[i] || !reports_semantic(g.krate(i)) {
            continue;
        }
        let d = g.def(i);
        for p in &d.panics {
            violations.push(Violation {
                rule: Rule::PanicReachability,
                path: g.path(i).to_string(),
                line: p.line,
                message: format!(
                    "{} is reachable from the hot path [{}] — use a checked form or justify",
                    p.what,
                    chain(i)
                ),
                suppressed: None,
            });
        }
    }

    // ---- R8: allocations in loops of hot-reachable functions ----
    for i in 0..n {
        if !hot[i] || !reports_semantic(g.krate(i)) {
            continue;
        }
        let d = g.def(i);
        for a in &d.allocs {
            violations.push(Violation {
                rule: Rule::HotLoopAlloc,
                path: g.path(i).to_string(),
                line: a.line,
                message: format!(
                    "{} allocates inside a loop on the hot path [{}] — hoist it or justify",
                    a.what,
                    chain(i)
                ),
                suppressed: None,
            });
        }
    }

    // ---- R9: telemetry reads outside the sanctioned reader crates ----
    for i in 0..n {
        if reads_telemetry_legitimately(g.krate(i)) {
            continue;
        }
        let d = g.def(i);
        for (ci, targets) in &call_targets[i] {
            if targets.is_empty() {
                continue;
            }
            let all_banned = targets.iter().all(|&t| {
                g.krate(t) == "obs" && TELEMETRY_READ_APIS.contains(&g.def(t).qual.as_str())
            });
            if all_banned {
                let call = &d.calls[*ci];
                violations.push(Violation {
                    rule: Rule::WriteOnlyTelemetry,
                    path: g.path(i).to_string(),
                    line: call.line,
                    message: format!(
                        "call to {} in {} resolves only to the telemetry read surface ({}) — telemetry is write-only outside crates/obs; read via the scrape endpoint or a bench/CLI exporter",
                        call.name,
                        d.qual,
                        g.def(targets[0]).qual,
                    ),
                    suppressed: None,
                });
            }
        }
    }

    // ---- transitive lock classes and parallel-dispatch flags ----
    let mut trans_locks: Vec<BTreeSet<String>> = (0..n)
        .map(|i| g.def(i).locks.iter().map(|l| l.class.clone()).collect())
        .collect();
    let mut dispatches: Vec<bool> = (0..n)
        .map(|i| g.def(i).calls.iter().any(|c| PARALLEL_FNS.contains(&c.name.as_str())))
        .collect();
    // Fixpoint over the (possibly cyclic) call graph, following only
    // reliably-resolved edges (see `reliable_edges`).
    loop {
        let mut changed = false;
        for i in 0..n {
            for &t in &reliable_edges[i] {
                if dispatches[t] && !dispatches[i] {
                    dispatches[i] = true;
                    changed = true;
                }
                if !trans_locks[t].is_empty() {
                    let add: Vec<String> = trans_locks[t]
                        .iter()
                        .filter(|c| !trans_locks[i].contains(*c))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        trans_locks[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- R7: lock-nesting edges, cycles, locks held across dispatch ----
    // Edge (A → B): class B acquired while a guard of class A is live,
    // either directly or through a call made under the guard.
    let mut lock_edges: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    let mut r7_seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for i in 0..n {
        let d = g.def(i);
        for l in &d.locks {
            for l2 in &d.locks {
                if l2.k > l.k && l2.k < l.scope_end_k && l2.class != l.class {
                    lock_edges.entry((l.class.clone(), l2.class.clone())).or_insert_with(|| {
                        (g.path(i).to_string(), l2.line, format!("in {}", d.qual))
                    });
                }
            }
            for (ci, targets) in &call_targets[i] {
                let call = &d.calls[*ci];
                if call.k <= l.k || call.k >= l.scope_end_k {
                    continue;
                }
                let reliable = !call.is_method || call.on_self;
                let direct_parallel = PARALLEL_FNS.contains(&call.name.as_str());
                let transitive_parallel =
                    reliable && targets.iter().any(|&t| dispatches[t]);
                if direct_parallel || transitive_parallel {
                    let message = format!(
                        "lock `{}` is held across a parallel_* dispatch (guard taken at line {} in {}) — workers may need the same lock",
                        l.class, l.line, d.qual
                    );
                    if r7_seen.insert((g.path(i).to_string(), call.line, message.clone())) {
                        violations.push(Violation {
                            rule: Rule::LockOrder,
                            path: g.path(i).to_string(),
                            line: call.line,
                            message,
                            suppressed: None,
                        });
                    }
                }
                if !reliable {
                    continue;
                }
                for t in targets {
                    for c2 in &trans_locks[*t] {
                        if *c2 != l.class {
                            lock_edges
                                .entry((l.class.clone(), c2.clone()))
                                .or_insert_with(|| {
                                    (
                                        g.path(i).to_string(),
                                        call.line,
                                        format!("via call to {} in {}", call.name, d.qual),
                                    )
                                });
                        } else {
                            // Same class re-acquired through a call while
                            // held: self-deadlock on a non-reentrant Mutex.
                            let message = format!(
                                "lock `{}` may be re-acquired through call to {} while already held in {} — self-deadlock",
                                l.class, call.name, d.qual
                            );
                            if r7_seen.insert((g.path(i).to_string(), call.line, message.clone()))
                            {
                                violations.push(Violation {
                                    rule: Rule::LockOrder,
                                    path: g.path(i).to_string(),
                                    line: call.line,
                                    message,
                                    suppressed: None,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    // Cycle detection over lock classes (iterative DFS, deterministic order).
    let classes: BTreeSet<&String> =
        lock_edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for start in &classes {
        // DFS from `start` looking for a path back to `start`.
        let mut stack: Vec<(&String, Vec<&String>)> = vec![(start, vec![start])];
        let mut visited: BTreeSet<&String> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for ((a, b), (vpath, vline, via)) in &lock_edges {
                if a != node {
                    continue;
                }
                if b == *start {
                    let cycle: BTreeSet<String> =
                        path.iter().map(|s| (*s).clone()).collect();
                    if reported.insert(cycle) {
                        let order: Vec<&str> =
                            path.iter().map(|s| s.as_str()).chain([start.as_str()]).collect();
                        violations.push(Violation {
                            rule: Rule::LockOrder,
                            path: vpath.clone(),
                            line: *vline,
                            message: format!(
                                "lock-order cycle: {} ({via}) — a concurrent reverse acquisition deadlocks",
                                order.join(" → ")
                            ),
                            suppressed: None,
                        });
                    }
                } else if visited.insert(b) {
                    let mut p = path.clone();
                    p.push(b);
                    stack.push((b, p));
                }
            }
        }
    }

    let hot_count = hot.iter().filter(|&&h| h).count();
    let unresolved_names: BTreeSet<&str> =
        unresolved.iter().map(|u| u.callee.as_str()).collect();
    let stats = GraphStats {
        functions: n,
        edges: edge_count,
        unresolved: unresolved.len(),
        unresolved_names: unresolved_names.len(),
        hot_functions: hot_count,
    };
    Analysis { violations, stats, unresolved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::symbols::extract;

    fn table(files: &[(&str, &str)]) -> Vec<FileSymbols> {
        files
            .iter()
            .map(|(path, src)| {
                let mut toks = lexer::lex(src);
                lexer::mark_test_regions(&mut toks);
                extract(path, &toks)
            })
            .collect()
    }

    #[test]
    fn r6_reports_full_chain_two_calls_deep() {
        let files = table(&[
            (
                "crates/serve/src/engine.rs",
                "impl ServeEngine { pub fn serve(&self, n: usize) { plan_batches(n); } }\n\
                 fn plan_batches(n: usize) { score_rows(n); }",
            ),
            (
                "crates/serve/src/score.rs",
                "fn score_rows(n: usize) { let x: Option<u32> = None; x.unwrap(); }",
            ),
        ]);
        let a = analyze(&files);
        let r6: Vec<&Violation> =
            a.violations.iter().filter(|v| v.rule == Rule::PanicReachability).collect();
        assert_eq!(r6.len(), 1, "{:#?}", a.violations);
        assert_eq!(r6[0].path, "crates/serve/src/score.rs");
        assert!(
            r6[0].message.contains("ServeEngine::serve → plan_batches → score_rows"),
            "{}",
            r6[0].message
        );
    }

    #[test]
    fn unreachable_panic_is_not_flagged() {
        let files = table(&[(
            "crates/serve/src/a.rs",
            "fn cold() { x.unwrap(); }\n\
             impl ServeEngine { pub fn serve(&self) { warm(); } }\n\
             fn warm() {}",
        )]);
        let a = analyze(&files);
        assert!(
            a.violations.iter().all(|v| v.rule != Rule::PanicReachability),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn kernel_crate_panics_are_not_reported_but_traversed() {
        let files = table(&[
            (
                "crates/serve/src/a.rs",
                "impl ServeEngine { pub fn serve(&self) { wr_eval::rank(3); } }",
            ),
            (
                "crates/eval/src/b.rs",
                "pub fn rank(k: usize) { inner(k); }\npub fn inner(k: usize) { x.unwrap(); }",
            ),
        ]);
        let a = analyze(&files);
        assert!(a.violations.iter().all(|v| v.rule != Rule::PanicReachability));
        // …but the functions are hot (traversal happened).
        assert!(a.stats.hot_functions >= 3, "{:?}", a.stats);
    }

    #[test]
    fn unresolved_extern_call_lands_in_bucket() {
        let files = table(&[(
            "crates/serve/src/a.rs",
            "fn f() { external_dep::frobnicate(1, 2); }",
        )]);
        let a = analyze(&files);
        assert_eq!(a.stats.unresolved, 1, "{:?}", a.unresolved);
        assert_eq!(a.unresolved[0].callee, "frobnicate");
        assert_eq!(a.unresolved[0].arity, 2);
    }

    #[test]
    fn trait_method_dispatch_links_all_impls() {
        let files = table(&[
            (
                "crates/serve/src/a.rs",
                "impl ServeEngine { pub fn serve(&self, m: &dyn Model) { m.represent(3); } }",
            ),
            (
                "crates/models/src/b.rs",
                "impl Model for SasRec { fn represent(&self, n: usize) { x.unwrap(); } }\n\
                 impl Model for Gru { fn represent(&self, n: usize) { } }",
            ),
        ]);
        let a = analyze(&files);
        let r6: Vec<&Violation> =
            a.violations.iter().filter(|v| v.rule == Rule::PanicReachability).collect();
        assert_eq!(r6.len(), 1, "{:#?}", a.violations);
        assert!(r6[0].message.contains("SasRec::represent"), "{}", r6[0].message);
    }

    #[test]
    fn shadowed_free_fn_prefers_same_crate() {
        let files = table(&[
            (
                "crates/serve/src/a.rs",
                "impl ServeEngine { pub fn serve(&self) { helper(1); } }\n\
                 fn helper(n: usize) {}",
            ),
            ("crates/ann/src/b.rs", "pub fn helper(n: usize) { x.unwrap(); }"),
        ]);
        let a = analyze(&files);
        // The ann::helper unwrap must NOT be flagged — serve's own helper shadows it.
        assert!(
            a.violations.iter().all(|v| v.rule != Rule::PanicReachability),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn r7_catches_deliberate_lock_cycle() {
        let files = table(&[(
            "crates/obs/src/a.rs",
            "impl A { fn one(&self) { let g = self.alpha.lock().unwrap(); self.two(); }\n\
                      fn two(&self) { let g = self.beta.lock().unwrap(); self.three(); }\n\
                      fn three(&self) { let g = self.alpha.lock().unwrap(); } }",
        )]);
        let a = analyze(&files);
        let r7: Vec<&Violation> =
            a.violations.iter().filter(|v| v.rule == Rule::LockOrder).collect();
        assert!(
            r7.iter().any(|v| v.message.contains("cycle") && v.message.contains("obs::alpha")),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn r7_flags_lock_held_across_parallel_dispatch() {
        let files = table(&[(
            "crates/serve/src/a.rs",
            "fn f(&self) { let g = self.state.lock().unwrap(); parallel_for(8, 1, |i| { touch(i); }); }",
        )]);
        let a = analyze(&files);
        assert!(
            a.violations
                .iter()
                .any(|v| v.rule == Rule::LockOrder && v.message.contains("parallel_*")),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn r7_no_false_cycle_for_sequential_guards() {
        let files = table(&[(
            "crates/obs/src/a.rs",
            "impl A { fn one(&self) { self.alpha.lock().unwrap().push(1); self.beta.lock().unwrap().push(2); }\n\
                      fn two(&self) { self.beta.lock().unwrap().push(1); self.alpha.lock().unwrap().push(2); } }",
        )]);
        let a = analyze(&files);
        // Temporary guards die at their statement: no nesting, no cycle.
        assert!(
            a.violations.iter().all(|v| v.rule != Rule::LockOrder),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn cold_sinks_cut_reachability_but_stay_checked_themselves() {
        let files = table(&[
            (
                "crates/serve/src/engine.rs",
                "impl ServeEngine { pub fn serve(&self) { self.flight.trigger(1); } }",
            ),
            (
                "crates/obs/src/flight.rs",
                "impl FlightRecorder { pub fn trigger(&self, r: u32) { seal(r); } }\n\
                 pub fn seal(r: u32) { let x: Option<u32> = None; x.unwrap(); }",
            ),
        ]);
        let a = analyze(&files);
        // The unwrap in the dump-sealing callee is NOT hot: the BFS cuts
        // at the fail-stop sink instead of dragging cold sealing code
        // into R6.
        assert!(
            a.violations.iter().all(|v| v.rule != Rule::PanicReachability),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn r9_flags_unambiguous_telemetry_read_in_a_serving_crate() {
        let files = table(&[
            (
                "crates/obs/src/registry.rs",
                "impl Registry { pub fn snapshot(&self) -> u32 { 0 } }",
            ),
            (
                "crates/serve/src/engine.rs",
                "impl ServeEngine { pub fn serve(&self) { let s = self.registry.snapshot(); } }",
            ),
        ]);
        let a = analyze(&files);
        let r9: Vec<&Violation> =
            a.violations.iter().filter(|v| v.rule == Rule::WriteOnlyTelemetry).collect();
        assert_eq!(r9.len(), 1, "{:#?}", a.violations);
        assert_eq!(r9[0].path, "crates/serve/src/engine.rs");
        assert!(r9[0].message.contains("Registry::snapshot"), "{}", r9[0].message);
    }

    #[test]
    fn r9_stays_silent_on_ambiguous_method_names() {
        // runtime's sampler calls `h.snapshot()` on a Histogram; under
        // name+arity resolution that also matches Registry::snapshot.
        // Ambiguity must not convict — only all-banned target sets do.
        let files = table(&[
            (
                "crates/obs/src/registry.rs",
                "impl Registry { pub fn snapshot(&self) -> u32 { 0 } }\n\
                 impl Histogram { pub fn snapshot(&self) -> u32 { 1 } }",
            ),
            (
                "crates/runtime/src/lib.rs",
                "pub fn record_metrics(h: &Histogram) { let s = h.snapshot(); }",
            ),
        ]);
        let a = analyze(&files);
        assert!(
            a.violations.iter().all(|v| v.rule != Rule::WriteOnlyTelemetry),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn r9_exempts_obs_bench_and_the_cli_binaries() {
        let files = table(&[
            (
                "crates/obs/src/span.rs",
                "impl Tracer { pub fn to_chrome_json(&self) -> u32 { 0 } }\n\
                 impl Tracer { pub fn dump(&self) { let j = self.to_chrome_json(); } }",
            ),
            (
                "crates/core/src/telemetry_export.rs",
                "pub fn export(t: &Tracer) { let j = t.to_chrome_json(); }",
            ),
            (
                "crates/bench/src/probe.rs",
                "pub fn probe(t: &Tracer) { let j = t.to_chrome_json(); }",
            ),
        ]);
        let a = analyze(&files);
        assert!(
            a.violations.iter().all(|v| v.rule != Rule::WriteOnlyTelemetry),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn r9_ignores_test_code_readbacks() {
        let files = table(&[
            (
                "crates/obs/src/span.rs",
                "impl Tracer { pub fn to_chrome_json(&self) -> u32 { 0 } }",
            ),
            (
                "crates/gateway/src/gateway.rs",
                "#[cfg(test)]\nmod tests { fn t(t: &Tracer) { let j = t.to_chrome_json(); } }",
            ),
        ]);
        let a = analyze(&files);
        assert!(
            a.violations.iter().all(|v| v.rule != Rule::WriteOnlyTelemetry),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn r8_flags_alloc_in_hot_loop() {
        let files = table(&[(
            "crates/serve/src/a.rs",
            "impl ServeEngine { pub fn serve(&self, n: usize) {\n\
                 for i in 0..n { let label = format!(\"batch{i}\"); emit(label); }\n\
             } }",
        )]);
        let a = analyze(&files);
        assert!(
            a.violations
                .iter()
                .any(|v| v.rule == Rule::HotLoopAlloc && v.message.contains("format!")),
            "{:#?}",
            a.violations
        );
    }
}
