//! A comment-, string-, and char-literal-aware tokenizer for Rust source.
//!
//! The rules in this crate match *token* sequences, never raw text, so a
//! `unwrap()` inside a string literal, a `static mut` mentioned in a doc
//! comment, or an `unsafe` in a `#[doc]` string can never fire a rule.
//! The lexer handles the constructs that defeat regex-based linters:
//!
//! * nested block comments (`/* a /* b */ c */`),
//! * raw strings with arbitrary hash fences (`r##"…"##`), byte and
//!   byte-raw strings, and raw identifiers (`r#type`),
//! * lifetimes vs char literals (`'a` vs `'a'`, including escapes and
//!   multi-byte scalars),
//! * float vs integer literals (so float-equality checks do not fire on
//!   `x == 0`), including hex/octal/binary prefixes, exponents, and
//!   suffixes — while leaving `0..n` and `x.max(y)` un-mangled.
//!
//! Tokens carry 1-based line spans for diagnostics, and an `in_test` flag
//! set by [`mark_test_regions`] for items under `#[cfg(test)]` / `#[test]`.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`unsafe`, `fn`, `unwrap`, …).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f32`).
    Float,
    /// String literal of any flavour (plain, raw, byte, byte-raw).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Punctuation; multi-char operators the rules care about (`::`, `==`,
    /// `!=`, …) are fused into a single token.
    Punct,
    /// `// …` (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, possibly nested and spanning lines.
    BlockComment,
}

/// One lexed token with its 1-based line span.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    /// Line the token starts on (1-based).
    pub line: u32,
    /// Line the token ends on (inclusive; differs from `line` only for
    /// multi-line strings and block comments).
    pub end_line: u32,
    /// True when the token sits inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

impl Token {
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, Kind::LineComment | Kind::BlockComment)
    }
}

/// Two-character operators fused during lexing. Longest-match-first is not
/// needed because no entry is a prefix of another entry's first two chars.
const TWO_CHAR_OPS: &[&[u8; 2]] = &[
    b"::", b"==", b"!=", b"<=", b">=", b"->", b"=>", b"..", b"&&", b"||",
    b"<<", b">>", b"+=", b"-=", b"*=", b"/=", b"%=", b"^=", b"|=", b"&=",
];

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Tokenize `src`. Unterminated strings/comments lex to a token that runs to
/// end of input — the lexer never panics on malformed source.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { b: src.as_bytes(), src, i: 0, line: 1, toks: Vec::new() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    toks: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => self.punct(),
            }
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: Kind, start: usize, start_line: u32) {
        self.toks.push(Token {
            kind,
            text: self.src[start..self.i].to_string(),
            line: start_line,
            end_line: self.line,
            in_test: false,
        });
    }

    fn line_comment(&mut self) {
        let (start, start_line) = (self.i, self.line);
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.push(Kind::LineComment, start, start_line);
    }

    fn block_comment(&mut self) {
        let (start, start_line) = (self.i, self.line);
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
            } else if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
            } else {
                self.i += 1;
            }
        }
        self.push(Kind::BlockComment, start, start_line);
    }

    /// Plain (escaped) string body, starting at the opening quote.
    fn string(&mut self) {
        let (start, start_line) = (self.i, self.line);
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.push(Kind::Str, start, start_line);
    }

    /// Raw string body: `"` fenced by `hashes` trailing `#`s.
    fn raw_string(&mut self, start: usize, start_line: u32, hashes: usize) {
        // self.i sits on the opening quote.
        self.i += 1;
        while self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
            } else if self.b[self.i] == b'"'
                && self.b[self.i + 1..].len() >= hashes
                && self.b[self.i + 1..self.i + 1 + hashes].iter().all(|&h| h == b'#')
            {
                self.i += 1 + hashes;
                break;
            } else {
                self.i += 1;
            }
        }
        self.push(Kind::Str, start, start_line);
    }

    fn char_or_lifetime(&mut self) {
        let (start, start_line) = (self.i, self.line);
        if self.peek(1) == Some(b'\\') {
            // Escaped char literal: skip to the unescaped closing quote.
            self.i += 2;
            while self.i < self.b.len() {
                match self.b[self.i] {
                    b'\\' => self.i += 2,
                    b'\'' => {
                        self.i += 1;
                        break;
                    }
                    _ => self.i += 1,
                }
            }
            self.push(Kind::Char, start, start_line);
            return;
        }
        // `'X'` (X possibly multi-byte) is a char literal; `'ident` is a
        // lifetime.
        let scalar_len = match self.peek(1) {
            Some(c) if c < 0x80 => 1,
            Some(c) if c >= 0xF0 => 4,
            Some(c) if c >= 0xE0 => 3,
            Some(c) if c >= 0xC0 => 2,
            _ => 0,
        };
        if scalar_len > 0 && self.peek(1 + scalar_len) == Some(b'\'') {
            self.i += 2 + scalar_len;
            self.push(Kind::Char, start, start_line);
        } else {
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
            self.push(Kind::Lifetime, start, start_line);
        }
    }

    fn number(&mut self) {
        let (start, start_line) = (self.i, self.line);
        let mut float = false;
        if self.b[self.i] == b'0' && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            // Radix literal: digits and underscores only (hex may use a-f).
            self.i += 2;
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_hexdigit() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
        } else {
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
            // A `.` continues the literal only when not starting a range
            // (`0..n`) or a method call (`1.max(2)`).
            if self.i < self.b.len() && self.b[self.i] == b'.' {
                let after = self.peek(1);
                let is_range_or_method =
                    matches!(after, Some(c) if c == b'.' || is_ident_start(c));
                if !is_range_or_method {
                    float = true;
                    self.i += 1;
                    while self.i < self.b.len()
                        && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
                    {
                        self.i += 1;
                    }
                }
            }
            // Exponent.
            if self.i < self.b.len() && matches!(self.b[self.i], b'e' | b'E') {
                let mut j = self.i + 1;
                if matches!(self.b.get(j), Some(b'+' | b'-')) {
                    j += 1;
                }
                if matches!(self.b.get(j), Some(c) if c.is_ascii_digit()) {
                    float = true;
                    self.i = j;
                    while self.i < self.b.len()
                        && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
                    {
                        self.i += 1;
                    }
                }
            }
        }
        // Type suffix (`u64`, `f32`, …).
        let suffix_start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        if self.b[suffix_start..self.i].starts_with(b"f32")
            || self.b[suffix_start..self.i].starts_with(b"f64")
        {
            float = true;
        }
        self.push(if float { Kind::Float } else { Kind::Int }, start, start_line);
    }

    /// Identifier, or a string/char literal behind an `r`/`b`/`br`/`rb`
    /// prefix, or a raw identifier (`r#type`).
    fn ident_or_prefixed_literal(&mut self) {
        let (start, start_line) = (self.i, self.line);
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let text = &self.src[start..self.i];
        let next = self.b.get(self.i).copied();
        match (text, next) {
            // Byte-char literal `b'…'`.
            ("b", Some(b'\'')) => {
                self.char_or_lifetime();
                self.retag_last(start, start_line);
            }
            // Plain-quoted with prefix: `b"…"`, `r"…"`, `br"…"`.
            ("b", Some(b'"')) => self.string_with_start(start, start_line),
            ("r" | "br" | "rb", Some(b'"')) => {
                self.raw_string_with_start(start, start_line, 0)
            }
            // Hash-fenced raw string or raw identifier.
            ("r" | "br" | "rb", Some(b'#')) => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some(b'"') {
                    self.i += hashes;
                    self.raw_string_with_start(start, start_line, hashes);
                } else if text == "r" && hashes == 1 {
                    // Raw identifier `r#type`.
                    self.i += 1;
                    while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                        self.i += 1;
                    }
                    self.push(Kind::Ident, start, start_line);
                } else {
                    self.push(Kind::Ident, start, start_line);
                }
            }
            _ => self.push(Kind::Ident, start, start_line),
        }
    }

    fn string_with_start(&mut self, start: usize, start_line: u32) {
        self.string();
        self.retag_last(start, start_line);
    }

    fn raw_string_with_start(&mut self, start: usize, start_line: u32, hashes: usize) {
        self.raw_string(self.i, start_line, hashes);
        self.retag_last(start, start_line);
    }

    /// Extend the last pushed literal token to include its prefix bytes.
    fn retag_last(&mut self, start: usize, start_line: u32) {
        if let Some(last) = self.toks.last_mut() {
            last.text = self.src[start..self.i].to_string();
            last.line = start_line;
        }
    }

    fn punct(&mut self) {
        let (start, start_line) = (self.i, self.line);
        if self.i + 1 < self.b.len() {
            let pair = [self.b[self.i], self.b[self.i + 1]];
            if TWO_CHAR_OPS.iter().any(|op| **op == pair) {
                self.i += 2;
                self.push(Kind::Punct, start, start_line);
                return;
            }
        }
        self.i += 1;
        self.push(Kind::Punct, start, start_line);
    }
}

/// Mark tokens belonging to `#[cfg(test)]` / `#[test]` items.
///
/// An attribute whose identifier list contains `test` (and not `not`, so
/// `#[cfg(not(test))]` stays production code) puts the *following item* —
/// up to its matching close brace, or `;` for brace-less items — into test
/// scope. Rules R1/R4/R5 skip test-scoped tokens.
pub fn mark_test_regions(toks: &mut [Token]) {
    // Indices of non-comment tokens; all structure scanning happens here.
    let idx: Vec<usize> = (0..toks.len()).filter(|&t| !toks[t].is_comment()).collect();
    let text = |k: usize| toks[idx[k]].text.as_str();
    let mut ranges: Vec<(usize, usize)> = Vec::new();

    let mut k = 0usize;
    while k < idx.len() {
        if !(text(k) == "#" && k + 1 < idx.len()) {
            k += 1;
            continue;
        }
        let mut a = k + 1;
        if a < idx.len() && text(a) == "!" {
            a += 1;
        }
        if a >= idx.len() || text(a) != "[" {
            k += 1;
            continue;
        }
        // Scan the attribute body for `test` / `not`.
        let mut depth = 1usize;
        let mut j = a + 1;
        let (mut has_test, mut has_not) = (false, false);
        while j < idx.len() && depth > 0 {
            match text(j) {
                "[" => depth += 1,
                "]" => depth -= 1,
                "test" if toks[idx[j]].kind == Kind::Ident => has_test = true,
                "not" if toks[idx[j]].kind == Kind::Ident => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            k = j;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut m = j;
        while m + 1 < idx.len() && text(m) == "#" && text(m + 1) == "[" {
            let mut d = 1usize;
            m += 2;
            while m < idx.len() && d > 0 {
                match text(m) {
                    "[" => d += 1,
                    "]" => d -= 1,
                    _ => {}
                }
                m += 1;
            }
        }
        // Find the item extent: first `{` (then match braces) or `;` at
        // paren/bracket depth 0.
        let mut d = 0isize;
        let mut end = None;
        while m < idx.len() {
            match text(m) {
                "(" | "[" => d += 1,
                ")" | "]" => d -= 1,
                ";" if d <= 0 => {
                    end = Some(m);
                    break;
                }
                "{" if d <= 0 => {
                    let mut braces = 1usize;
                    m += 1;
                    while m < idx.len() && braces > 0 {
                        match text(m) {
                            "{" => braces += 1,
                            "}" => braces -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    end = Some(m.saturating_sub(1));
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        let end = end.unwrap_or(idx.len() - 1);
        ranges.push((idx[k], idx[end]));
        k = end + 1;
    }

    for (lo, hi) in ranges {
        for t in toks.iter_mut().take(hi + 1).skip(lo) {
            t.in_test = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x: u32 = a::b(c);");
        assert!(ts.contains(&(Kind::Punct, "::".into())));
        assert!(ts.contains(&(Kind::Ident, "let".into())));
    }

    #[test]
    fn string_contents_are_not_tokens() {
        let ts = kinds(r#"let s = "unsafe { x.unwrap() } static mut";"#);
        let idents: Vec<&str> =
            ts.iter().filter(|(k, _)| *k == Kind::Ident).map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r##"quote " and "# inside"##; let y = 1;"####;
        let ts = kinds(src);
        let strs: Vec<&str> =
            ts.iter().filter(|(k, _)| *k == Kind::Str).map(|(_, t)| t.as_str()).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].starts_with("r##\""));
        assert!(ts.contains(&(Kind::Ident, "y".into())));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let ts = kinds(r#"let a = b"bytes"; let c = br"raw"; let d = b'x';"#);
        assert_eq!(ts.iter().filter(|(k, _)| *k == Kind::Str).count(), 2);
        assert_eq!(ts.iter().filter(|(k, _)| *k == Kind::Char).count(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("/* outer /* inner */ still comment */ fn x() {}");
        assert_eq!(ts[0].0, Kind::BlockComment);
        assert!(ts[0].1.contains("inner"));
        assert!(ts.contains(&(Kind::Ident, "fn".into())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'b'; let n = '\\n'; let u = '→'; }");
        let lifetimes = ts.iter().filter(|(k, _)| *k == Kind::Lifetime).count();
        let chars = ts.iter().filter(|(k, _)| *k == Kind::Char).count();
        assert_eq!(lifetimes, 2, "{ts:?}");
        assert_eq!(chars, 3, "{ts:?}");
    }

    #[test]
    fn float_vs_int_literals() {
        let ts = kinds("a == 0.0; b == 0; c != 1e-3; d == 0x1F; e == 2f32; f = 0..n; g = 1.max(2);");
        let floats: Vec<&str> =
            ts.iter().filter(|(k, _)| *k == Kind::Float).map(|(_, t)| t.as_str()).collect();
        assert_eq!(floats, vec!["0.0", "1e-3", "2f32"]);
        let ints: Vec<&str> =
            ts.iter().filter(|(k, _)| *k == Kind::Int).map(|(_, t)| t.as_str()).collect();
        assert!(ints.contains(&"0x1F"));
        assert!(ints.contains(&"1"), "1.max(2) keeps 1 an int: {ints:?}");
    }

    #[test]
    fn comments_track_line_spans() {
        let src = "fn a() {}\n/* two\nline */\nfn b() {}\n";
        let ts = lex(src);
        let c = ts.iter().find(|t| t.kind == Kind::BlockComment).unwrap();
        assert_eq!((c.line, c.end_line), (2, 3));
        let b = ts.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let ts = kinds("let s = \"never closed");
        assert!(ts.iter().any(|(k, _)| *k == Kind::Str));
    }

    #[test]
    fn raw_identifiers() {
        let ts = kinds("let r#type = 1;");
        assert!(ts.contains(&(Kind::Ident, "r#type".into())));
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn prod2() {}";
        let mut ts = lex(src);
        mark_test_regions(&mut ts);
        let find = |name: &str| ts.iter().find(|t| t.text == name).unwrap();
        assert!(!find("prod").in_test);
        assert!(find("tests").in_test);
        assert!(find("y").in_test);
        assert!(!find("prod2").in_test);
    }

    #[test]
    fn cfg_not_test_stays_production() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }";
        let mut ts = lex(src);
        mark_test_regions(&mut ts);
        assert!(!ts.iter().find(|t| t.text == "unwrap").unwrap().in_test);
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "#[test]\nfn check_it() { a.unwrap(); }\nfn prod() { b.unwrap(); }";
        let mut ts = lex(src);
        mark_test_regions(&mut ts);
        assert!(ts.iter().find(|t| t.text == "a").unwrap().in_test);
        assert!(!ts.iter().find(|t| t.text == "b").unwrap().in_test);
    }
}
