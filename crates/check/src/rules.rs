//! The `wr-check` rule set and suppression directives.
//!
//! Five rules guard the properties the reproduction's claims rest on
//! (deterministic, panic-free kernels — see DESIGN.md "Static analysis
//! gates"):
//!
//! * **R1 `no-panic`** — no `.unwrap()` / `.expect(…)` / `panic!` / `todo!`
//!   in non-test code of the kernel crates (tensor, linalg, whitening,
//!   autograd, nn, eval, data, core). Kernel code returns `Result` or
//!   carries a justified allow directive.
//! * **R2 `safety-comment`** — every `unsafe` block, fn, impl, or trait is
//!   immediately preceded by a `// SAFETY:` comment (applies everywhere,
//!   tests included). Function-pointer *types* (`unsafe fn(…)`) are exempt.
//! * **R3 `pool-only-parallelism`** — `thread::spawn` and `static mut` are
//!   forbidden outside `crates/runtime` and `crates/obs`: all
//!   result-producing parallelism goes through the shared pool so the
//!   bit-determinism contract stays auditable in one place. The obs
//!   exemption covers exactly the telemetry endpoint's accept loop
//!   (`wr_obs::serve_http`), which must outlive any bounded pool dispatch
//!   and never touches results.
//! * **R4 `determinism`** — `Instant::now` / `SystemTime::now` and
//!   `HashMap` / `HashSet` (iteration-order hazards) are flagged in
//!   result-producing crates. Wall-clock reads are allowlisted only in
//!   `crates/obs` (home of the `Clock` trait's production impl —
//!   everything else routes timing through `wr_obs::Clock`) and
//!   `crates/bench` (the harness timer and probe binaries); the
//!   hash-collection exemption covers `crates/bench` only.
//! * **R5 `float-eq`** — direct `==` / `!=` against a float literal in
//!   non-test code; use a tolerance helper or justify the exact compare.
//!
//! Four semantic rules run on the workspace call graph built by
//! [`crate::symbols`] / [`crate::graph`] (pass 2):
//!
//! * **R6 `panic-reachability`** — panic sites (unwrap/expect/panic!-family,
//!   non-literal indexing) in functions transitively reachable from the
//!   hot-path root set, full call chain in the diagnostic.
//! * **R7 `lock-order`** — cycles in the lock-acquisition nesting graph,
//!   locks held across a `parallel_*` dispatch, same-class re-acquisition.
//! * **R8 `hot-loop-alloc`** — allocation calls inside loops of
//!   hot-path-reachable functions.
//! * **R9 `write-only-telemetry`** — serving crates may emit telemetry but
//!   never read it back: calls that resolve exclusively to the obs read /
//!   export surface (`Registry::snapshot`, `Tracer::events`,
//!   `FlightRecorder::snapshot_json`, …) are flagged outside
//!   `crates/obs`, the harness, and the CLI binaries.
//!
//! Suppression is explicit and justified, never silent:
//!
//! ```text
//! // wr-check: allow(R1) — index bounded by the loop above
//! ```
//!
//! The directive goes on the offending line or the line directly above it,
//! names one or more rules (`R1`/`no-panic`, …), and must carry a reason;
//! a directive without a justification is itself a violation that cannot
//! be suppressed.

use crate::lexer::{self, Kind, Token};

/// Rule identifiers. `Directive` marks malformed suppression directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    NoPanic,
    SafetyComment,
    PoolOnlyParallelism,
    Determinism,
    FloatEq,
    PanicReachability,
    LockOrder,
    HotLoopAlloc,
    WriteOnlyTelemetry,
    Directive,
}

impl Rule {
    /// Every rule, in id order (used by `--explain` and the report).
    pub const ALL: &'static [Rule] = &[
        Rule::NoPanic,
        Rule::SafetyComment,
        Rule::PoolOnlyParallelism,
        Rule::Determinism,
        Rule::FloatEq,
        Rule::PanicReachability,
        Rule::LockOrder,
        Rule::HotLoopAlloc,
        Rule::WriteOnlyTelemetry,
        Rule::Directive,
    ];

    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "R1",
            Rule::SafetyComment => "R2",
            Rule::PoolOnlyParallelism => "R3",
            Rule::Determinism => "R4",
            Rule::FloatEq => "R5",
            Rule::PanicReachability => "R6",
            Rule::LockOrder => "R7",
            Rule::HotLoopAlloc => "R8",
            Rule::WriteOnlyTelemetry => "R9",
            Rule::Directive => "D0",
        }
    }

    pub fn slug(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::SafetyComment => "safety-comment",
            Rule::PoolOnlyParallelism => "pool-only-parallelism",
            Rule::Determinism => "determinism",
            Rule::FloatEq => "float-eq",
            Rule::PanicReachability => "panic-reachability",
            Rule::LockOrder => "lock-order",
            Rule::HotLoopAlloc => "hot-loop-alloc",
            Rule::WriteOnlyTelemetry => "write-only-telemetry",
            Rule::Directive => "directive",
        }
    }

    /// Parse a rule name from a directive (`R1` or its slug; case-insensitive).
    pub fn from_name(name: &str) -> Option<Rule> {
        match name.trim().to_ascii_lowercase().as_str() {
            "r1" | "no-panic" => Some(Rule::NoPanic),
            "r2" | "safety-comment" => Some(Rule::SafetyComment),
            "r3" | "pool-only-parallelism" => Some(Rule::PoolOnlyParallelism),
            "r4" | "determinism" => Some(Rule::Determinism),
            "r5" | "float-eq" => Some(Rule::FloatEq),
            "r6" | "panic-reachability" => Some(Rule::PanicReachability),
            "r7" | "lock-order" => Some(Rule::LockOrder),
            "r8" | "hot-loop-alloc" => Some(Rule::HotLoopAlloc),
            "r9" | "write-only-telemetry" => Some(Rule::WriteOnlyTelemetry),
            _ => None,
        }
    }

    /// The `--explain` text: rationale, scope, and directive syntax.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::NoPanic => {
                "R1 no-panic — no .unwrap() / .expect(…) / panic! / todo! / unimplemented!\n\
                 in non-test code of the kernel crates.\n\n\
                 Rationale: the paper's whitening transform is a deterministic kernel;\n\
                 a panic in tensor/linalg/whitening/autograd/nn/eval/data/core kills\n\
                 training and serving alike. Kernel code returns Result (try_ siblings\n\
                 exist for the documented panicking wrappers) or justifies the panic.\n\n\
                 Scope: crates/{tensor,linalg,whitening,autograd,nn,eval,data,core},\n\
                 production code only (tests, benches, examples exempt).\n\n\
                 Suppress: // wr-check: allow(R1) — <why the panic is unreachable>"
            }
            Rule::SafetyComment => {
                "R2 safety-comment — every unsafe block/fn/impl/trait needs an\n\
                 immediately preceding `// SAFETY:` comment.\n\n\
                 Rationale: each unsafe site carries a proof obligation; the comment\n\
                 is where the proof lives, adjacent so it cannot rot silently.\n\
                 Function-pointer types (`unsafe fn(…)`) are exempt — nothing to\n\
                 prove at a type mention.\n\n\
                 Scope: the whole workspace, tests included.\n\n\
                 Suppress: // wr-check: allow(R2) — <reason> (rarely appropriate)"
            }
            Rule::PoolOnlyParallelism => {
                "R3 pool-only-parallelism — thread::spawn and `static mut` are\n\
                 forbidden outside crates/runtime and crates/obs.\n\n\
                 Rationale: bit-identical results at any WR_THREADS require every\n\
                 parallel primitive to go through the one audited pool; ad-hoc\n\
                 threads and racy statics break that contract invisibly. The obs\n\
                 exemption exists for the telemetry endpoint's accept loop\n\
                 (wr_obs::serve_http): it must outlive any bounded pool dispatch,\n\
                 and obs sits below wr-runtime in the dependency order — it is\n\
                 read-only over snapshots and never touches results.\n\n\
                 Scope: every crate except crates/runtime and crates/obs.\n\n\
                 Suppress: // wr-check: allow(R3) — <reason>"
            }
            Rule::Determinism => {
                "R4 determinism — Instant::now / SystemTime::now and HashMap/HashSet\n\
                 are flagged in result-producing crates.\n\n\
                 Rationale: wall-clock reads and hash-iteration order are the two\n\
                 classic nondeterminism leaks. Timing routes through wr_obs::Clock\n\
                 (production impl lives in crates/obs); ordered BTree collections\n\
                 replace hashed ones unless iteration order provably never reaches\n\
                 results.\n\n\
                 Scope: clock half — everywhere except crates/obs, crates/bench,\n\
                 wr-check itself; hash half — everywhere except crates/bench and\n\
                 wr-check.\n\n\
                 Suppress: // wr-check: allow(R4) — <why order/time never reaches results>"
            }
            Rule::FloatEq => {
                "R5 float-eq — direct == / != against a float literal in non-test\n\
                 code.\n\n\
                 Rationale: exact float comparison is usually a rounding bug; the\n\
                 few intentional exact compares (sentinels, bit-pattern checks)\n\
                 must say so.\n\n\
                 Scope: the whole workspace except wr-check itself; production code\n\
                 only.\n\n\
                 Suppress: // wr-check: allow(R5) — <why exact comparison is correct>"
            }
            Rule::PanicReachability => {
                "R6 panic-reachability — unwrap/expect/panic!-family and non-literal\n\
                 indexing in any function transitively reachable from the hot-path\n\
                 root set, with the full call chain in the diagnostic.\n\n\
                 Rationale: the serving SLO says no request may kill the process;\n\
                 a panic three calls below ServeEngine::serve is invisible to the\n\
                 line-level R1 but just as fatal. The workspace call graph\n\
                 (name+arity resolution, trait dispatch linked to all impls,\n\
                 unresolved calls kept in an explicit bucket) proves reachability.\n\n\
                 Hot-path roots: ServeEngine::serve, ServeEngine::try_serve,\n\
                 Gateway::serve, Gateway::try_serve, IvfIndex::search,\n\
                 batch_top_k, and parallel_* closure bodies in\n\
                 crates/{serve,ann,runtime,obs,gateway}.\n\n\
                 Scope: hot-reachable functions outside the kernel crates (R1 owns\n\
                 kernel panic discipline), excluding crates/bench and wr-check.\n\
                 Exemptions: asserts (sanctioned precondition contract), literal\n\
                 indices, indices naming an enclosing for-range loop variable or a\n\
                 parallel-closure parameter.\n\n\
                 Suppress: // wr-check: allow(R6) — <why the panic is unreachable>\n\
                 (zero suppressions are allowed in crates/serve and crates/ann)"
            }
            Rule::LockOrder => {
                "R7 lock-order — cycles in the workspace lock-acquisition nesting\n\
                 graph, locks held across a parallel_* dispatch, and same-class\n\
                 re-acquisition through a call while held.\n\n\
                 Rationale: two locks taken in opposite orders on two threads is a\n\
                 deadlock that no test reliably reproduces; a guard held across a\n\
                 pool dispatch deadlocks the moment a worker needs the same lock.\n\
                 Lock classes are per-field (e.g. obs::shards), nesting edges come\n\
                 from guards whose extent covers another acquisition — directly or\n\
                 through calls (transitive lock sets via the call graph).\n\n\
                 Scope: the whole workspace, production code only.\n\n\
                 Suppress: // wr-check: allow(R7) — <why the order is safe>"
            }
            Rule::HotLoopAlloc => {
                "R8 hot-loop-alloc — allocation calls (Vec/Box/String constructors,\n\
                 vec!/format!, .to_vec()/.to_string()/.to_owned()) inside loops of\n\
                 hot-path-reachable functions.\n\n\
                 Rationale: serving throughput is memory-bound; a per-iteration\n\
                 allocation in a hot loop is a silent 2–10× tax the profiler only\n\
                 shows after deploy. Hoist the buffer or justify why the loop is\n\
                 cold in practice.\n\n\
                 Scope: same reachability and crate set as R6.\n\n\
                 Suppress: // wr-check: allow(R8) — <why the allocation must stay>"
            }
            Rule::WriteOnlyTelemetry => {
                "R9 write-only-telemetry — serving code may emit telemetry\n\
                 (counters, histograms, spans, flight events) but never read it\n\
                 back: calls that resolve exclusively to the obs read / export\n\
                 surface are flagged outside crates/obs.\n\n\
                 Rationale: the hot path's telemetry cost budget assumes strictly\n\
                 write-only instruments — a snapshot or span export inside a\n\
                 serving crate takes the aggregation locks, stalls every\n\
                 concurrent observe, and smuggles telemetry state into code that\n\
                 must stay bit-deterministic. Reads belong to the scrape\n\
                 endpoint (wr_obs::serve_http), the bench harness, and the CLI\n\
                 binaries that export reports.\n\n\
                 Banned targets: Registry::snapshot, Registry::to_json,\n\
                 Tracer::events, Tracer::to_chrome_json, Tracer::to_jsonl,\n\
                 FlightRecorder::events, FlightRecorder::snapshot_json.\n\
                 A call is flagged only when every resolved candidate is on the\n\
                 banned list — ambiguous method names stay silent.\n\n\
                 Scope: production code of every crate except crates/obs,\n\
                 crates/bench, crates/core (the CLI binaries), and wr-check.\n\n\
                 Suppress: // wr-check: allow(R9) — <why this read is off the hot path>"
            }
            Rule::Directive => {
                "D0 directive — a malformed `wr-check:` suppression directive.\n\n\
                 Rationale: suppression is explicit and justified, never silent; a\n\
                 directive that names no known rule or carries no reason would\n\
                 otherwise rot into an accidental blanket allow.\n\n\
                 Syntax: // wr-check: allow(R1,R5) — <justification, ≥ 5 chars>\n\
                 placed on the offending line or the line directly above.\n\
                 D0 findings cannot be suppressed."
            }
        }
    }
}

/// One finding. `suppressed` carries the directive's justification when an
/// allow directive covers the line.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    pub path: String,
    pub line: u32,
    pub message: String,
    pub suppressed: Option<String>,
}

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    pub r1: bool,
    pub r2: bool,
    pub r3: bool,
    /// R4's wall-clock half: `Instant::now` / `SystemTime::now`. Off only
    /// for `crates/obs` (the one production clock), `crates/bench`, and
    /// wr-check itself.
    pub r4_clock: bool,
    /// R4's iteration-order half: `HashMap` / `HashSet`. Off only for
    /// `crates/bench` and wr-check itself — wr-obs gets no hash exemption.
    pub r4_hash: bool,
    pub r5: bool,
    /// Whole file is test code (under `tests/`, `benches/`, `examples/`):
    /// the non-test-only rules (R1/R4/R5) are skipped entirely.
    pub test_path: bool,
}

/// Crates whose non-test code must be panic-free (R1). Also the crates the
/// semantic rules (R6/R8) do *not* re-report panics in — R1 owns their
/// panic discipline (documented panicking wrappers with `try_` siblings).
pub(crate) const KERNEL_CRATES: &[&str] =
    &["tensor", "linalg", "whitening", "autograd", "nn", "eval", "data", "core"];

/// Returns the crate name for `crates/<name>/…` paths.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

impl Scope {
    pub fn for_path(rel: &str) -> Scope {
        let krate = crate_of(rel);
        let test_path = rel
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
        // wr-check's own sources are exempt from R4/R5 because rule
        // patterns appear in them as data. Beyond that, the wall-clock
        // half of R4 is allowed only in crates/obs (MonotonicClock — the
        // single production `Instant::now`) and crates/bench (harness
        // timer, probe binaries); the hash half only in crates/bench.
        let bench_or_check = matches!(krate, Some("bench") | Some("check"));
        Scope {
            r1: krate.is_some_and(|c| KERNEL_CRATES.contains(&c)),
            r2: true,
            r3: !matches!(krate, Some("runtime") | Some("obs")),
            r4_clock: !bench_or_check && krate != Some("obs"),
            r4_hash: !bench_or_check,
            r5: krate != Some("check"),
            test_path,
        }
    }
}

/// A parsed allow directive.
#[derive(Debug, Clone)]
pub struct Directive {
    pub rules: Vec<Rule>,
    pub reason: String,
    pub target_line: u32,
}

/// Mark every violation covered by a matching directive as suppressed.
/// `D0` (malformed-directive) findings are never suppressible.
pub fn apply_suppressions(violations: &mut [Violation], directives: &[Directive]) {
    for v in violations {
        if v.rule == Rule::Directive || v.suppressed.is_some() {
            continue;
        }
        if let Some(d) = directives
            .iter()
            .find(|d| d.target_line == v.line && d.rules.contains(&v.rule))
        {
            v.suppressed = Some(d.reason.clone());
        }
    }
}

/// Run the line-level rules (R1–R5, D0) over a lexed file, returning the
/// raw findings (suppressions not yet applied) and the parsed directives.
/// The directives also govern the semantic findings pass 2 attributes to
/// this file.
pub fn check_tokens(rel_path: &str, toks: &[Token]) -> (Vec<Violation>, Vec<Directive>) {
    let scope = Scope::for_path(rel_path);
    let mut out: Vec<Violation> = Vec::new();
    let directives = collect_directives(rel_path, toks, &mut out);
    line_rules(rel_path, toks, scope, &mut out);
    (out, directives)
}

/// Run every applicable line-level rule on one file and apply suppressions.
/// `rel_path` must use `/` separators and be relative to the workspace root
/// (it selects the rule scope).
pub fn check_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let mut toks = lexer::lex(src);
    lexer::mark_test_regions(&mut toks);
    let (mut out, directives) = check_tokens(rel_path, &toks);
    apply_suppressions(&mut out, &directives);
    out
}

fn line_rules(rel_path: &str, toks: &[Token], scope: Scope, out: &mut Vec<Violation>) {

    let idx: Vec<usize> = (0..toks.len()).filter(|&t| !toks[t].is_comment()).collect();
    let prod = |k: usize| -> bool { !scope.test_path && !toks[idx[k]].in_test };

    let mut push = |rule: Rule, line: u32, message: String| {
        out.push(Violation { rule, path: rel_path.to_string(), line, message, suppressed: None });
    };

    for k in 0..idx.len() {
        let t = &toks[idx[k]];
        let text = t.text.as_str();
        let next = |n: usize| idx.get(k + n).map(|&i| &toks[i]);

        // R1: panic paths in kernel-crate production code.
        if scope.r1 && prod(k) && t.kind == Kind::Ident {
            if (text == "unwrap" || text == "expect")
                && k > 0
                && toks[idx[k - 1]].text == "."
                && next(1).is_some_and(|n| n.text == "(")
            {
                push(
                    Rule::NoPanic,
                    t.line,
                    format!(".{text}() in kernel code — return a Result or justify"),
                );
            }
            if (text == "panic" || text == "todo" || text == "unimplemented")
                && next(1).is_some_and(|n| n.text == "!")
            {
                push(
                    Rule::NoPanic,
                    t.line,
                    format!("{text}! in kernel code — return a Result or justify"),
                );
            }
        }

        // R2: unsafe must carry a SAFETY comment.
        if scope.r2 && t.kind == Kind::Ident && text == "unsafe" {
            // `unsafe fn(` with no name is a function-pointer type, not a
            // definition — nothing to justify at the use site.
            let is_fn_pointer_type = next(1).is_some_and(|n| n.text == "fn")
                && next(2).is_some_and(|n| n.text == "(");
            if !is_fn_pointer_type && !has_safety_comment(&toks, idx[k]) {
                let what = next(1).map_or("item", |n| match n.text.as_str() {
                    "{" => "block",
                    "impl" => "impl",
                    "fn" => "fn",
                    "trait" => "trait",
                    _ => "item",
                });
                push(
                    Rule::SafetyComment,
                    t.line,
                    format!("unsafe {what} without an immediately preceding `// SAFETY:` comment"),
                );
            }
        }

        // R3: parallelism primitives outside the pool crate.
        if scope.r3 && t.kind == Kind::Ident {
            if text == "thread"
                && next(1).is_some_and(|n| n.text == "::")
                && next(2).is_some_and(|n| n.text == "spawn")
            {
                push(
                    Rule::PoolOnlyParallelism,
                    t.line,
                    "thread::spawn outside crates/runtime — use the wr-runtime pool".to_string(),
                );
            }
            if text == "static" && next(1).is_some_and(|n| n.text == "mut") {
                push(
                    Rule::PoolOnlyParallelism,
                    t.line,
                    "static mut outside crates/runtime — use atomics or OnceLock".to_string(),
                );
            }
        }

        // R4: determinism hazards in result-producing code.
        if prod(k) && t.kind == Kind::Ident {
            if scope.r4_clock
                && (text == "Instant" || text == "SystemTime")
                && next(1).is_some_and(|n| n.text == "::")
                && next(2).is_some_and(|n| n.text == "now")
            {
                push(
                    Rule::Determinism,
                    t.line,
                    format!("{text}::now in a result-producing path — route timing through wr_obs::Clock"),
                );
            }
            if scope.r4_hash && (text == "HashMap" || text == "HashSet") {
                // One finding per type per file is enough to force the
                // decision (switch to BTreeMap/BTreeSet or justify).
                let first = idx[..k].iter().all(|&i| toks[i].text != *text || toks[i].in_test);
                if first {
                    push(
                        Rule::Determinism,
                        t.line,
                        format!(
                            "{text} has nondeterministic iteration order — use the BTree variant or justify that iteration order never reaches results"
                        ),
                    );
                }
            }
        }

        // R5: direct float equality.
        if scope.r5 && prod(k) && t.kind == Kind::Punct && (text == "==" || text == "!=") {
            let lhs_float = k > 0 && toks[idx[k - 1]].kind == Kind::Float;
            let rhs_float = {
                let mut j = 1;
                if next(j).is_some_and(|n| n.text == "-") {
                    j += 1;
                }
                next(j).is_some_and(|n| n.kind == Kind::Float)
            };
            if lhs_float || rhs_float {
                push(
                    Rule::FloatEq,
                    t.line,
                    format!("direct float {text} — compare with a tolerance or justify the exact comparison"),
                );
            }
        }
    }

}

/// True when the `unsafe` token at absolute index `ti` is covered by a
/// SAFETY comment: either an earlier comment on the same line, or a
/// contiguous comment-only block on the lines directly above.
fn has_safety_comment(toks: &[Token], ti: usize) -> bool {
    let line = toks[ti].line;
    // Same-line comment before the token (e.g. `/* SAFETY: … */ unsafe {`).
    if toks[..ti]
        .iter()
        .any(|t| t.is_comment() && t.end_line == line && t.text.contains("SAFETY:"))
    {
        return true;
    }
    // Per-line presence maps.
    let mut code_lines = std::collections::BTreeSet::new();
    let mut comment_lines = std::collections::BTreeSet::new();
    let mut safety_lines = std::collections::BTreeSet::new();
    for t in toks {
        if t.is_comment() {
            for l in t.line..=t.end_line {
                comment_lines.insert(l);
            }
            if t.text.contains("SAFETY:") {
                for l in t.line..=t.end_line {
                    safety_lines.insert(l);
                }
            }
        } else {
            for l in t.line..=t.end_line {
                code_lines.insert(l);
            }
        }
    }
    // Walk the contiguous comment-only block immediately above.
    let mut l = line.saturating_sub(1);
    while l >= 1 && comment_lines.contains(&l) && !code_lines.contains(&l) {
        if safety_lines.contains(&l) {
            return true;
        }
        l -= 1;
    }
    false
}

/// Extract allow directives from comments; malformed directives are pushed
/// into `out` as unsuppressible `D0` violations.
fn collect_directives(rel_path: &str, toks: &[Token], out: &mut Vec<Violation>) -> Vec<Directive> {
    let mut directives = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() || !t.text.contains("wr-check:") {
            continue;
        }
        match parse_directive(&t.text) {
            Ok((rules, reason)) => {
                directives.push(Directive {
                    rules,
                    reason,
                    target_line: directive_target(toks, i),
                });
            }
            Err(msg) => out.push(Violation {
                rule: Rule::Directive,
                path: rel_path.to_string(),
                line: t.line,
                message: msg,
                suppressed: None,
            }),
        }
    }
    directives
}

/// The line a directive governs: its own line when the comment trails code,
/// otherwise the next line holding a non-comment token.
fn directive_target(toks: &[Token], comment_idx: usize) -> u32 {
    let line = toks[comment_idx].line;
    if toks
        .iter()
        .any(|t| !t.is_comment() && t.line <= line && t.end_line >= line)
    {
        return line;
    }
    toks.iter()
        .filter(|t| !t.is_comment() && t.line > line)
        .map(|t| t.line)
        .min()
        .unwrap_or(line)
}

/// Parse the allow-directive body (rule list and justification) out of a
/// comment.
fn parse_directive(comment: &str) -> Result<(Vec<Rule>, String), String> {
    let after = comment
        .split("wr-check:")
        .nth(1)
        .ok_or_else(|| "internal: directive marker vanished".to_string())?
        .trim_start();
    let body = after.strip_prefix("allow(").ok_or_else(|| {
        "malformed directive: expected `wr-check: allow(<rule>) — <reason>`".to_string()
    })?;
    let close = body
        .find(')')
        .ok_or_else(|| "malformed directive: missing `)`".to_string())?;
    let mut rules = Vec::new();
    for name in body[..close].split(',') {
        match Rule::from_name(name) {
            Some(r) => rules.push(r),
            None => {
                return Err(format!(
                    "malformed directive: unknown rule {:?} (use R1–R9 or their slugs)",
                    name.trim()
                ))
            }
        }
    }
    if rules.is_empty() {
        return Err("malformed directive: empty rule list".to_string());
    }
    let reason: String = body[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':'))
        .trim()
        .to_string();
    if reason.len() < 5 {
        return Err(
            "directive needs a justification: `wr-check: allow(<rule>) — <reason>`".to_string()
        );
    }
    Ok((rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active(path: &str, src: &str) -> Vec<Violation> {
        check_source(path, src)
            .into_iter()
            .filter(|v| v.suppressed.is_none())
            .collect()
    }

    #[test]
    fn scope_selects_kernel_crates() {
        assert!(Scope::for_path("crates/tensor/src/lib.rs").r1);
        assert!(!Scope::for_path("crates/models/src/lib.rs").r1);
        assert!(!Scope::for_path("crates/runtime/src/lib.rs").r3);
        // The telemetry endpoint's accept loop lives on a detached thread;
        // obs shares runtime's R3 exemption (and only obs does).
        assert!(!Scope::for_path("crates/obs/src/http.rs").r3);
        assert!(Scope::for_path("crates/tensor/src/lib.rs").r3);
        assert!(Scope::for_path("crates/gateway/src/gateway.rs").r3);
        assert!(!Scope::for_path("crates/bench/src/harness.rs").r4_clock);
        assert!(!Scope::for_path("crates/bench/src/harness.rs").r4_hash);
        // wr-obs is the one production home of wall-clock reads, but it
        // gets no hash-collection exemption.
        assert!(!Scope::for_path("crates/obs/src/clock.rs").r4_clock);
        assert!(Scope::for_path("crates/obs/src/clock.rs").r4_hash);
        assert!(Scope::for_path("crates/serve/src/latency.rs").r4_clock);
        assert!(Scope::for_path("crates/tensor/tests/x.rs").test_path);
    }

    #[test]
    fn instant_now_is_allowed_in_obs_but_not_elsewhere() {
        let src = "fn f() -> u64 { Instant::now().elapsed().as_nanos() as u64 }";
        assert!(active("crates/obs/src/clock.rs", src).is_empty());
        let vs = active("crates/serve/src/latency.rs", src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::Determinism);
        assert!(vs[0].message.contains("wr_obs::Clock"));
    }

    #[test]
    fn hash_map_in_obs_is_still_flagged() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let vs = active("crates/obs/src/registry.rs", src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::Determinism);
    }

    #[test]
    fn directive_requires_reason() {
        let src = "// wr-check: allow(R1)\nfn f() { x.unwrap(); }";
        let vs = check_source("crates/tensor/src/a.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::Directive));
        // The unwrap is NOT suppressed by the malformed directive.
        assert!(vs
            .iter()
            .any(|v| v.rule == Rule::NoPanic && v.suppressed.is_none()));
    }

    #[test]
    fn directive_above_and_trailing_both_work() {
        let above = "// wr-check: allow(R1) — bounded by construction\nfn f() { x.unwrap(); }";
        let vs = check_source("crates/tensor/src/a.rs", above);
        assert!(vs.iter().all(|v| v.suppressed.is_some()), "{vs:?}");

        let trailing = "fn f() { x.unwrap(); } // wr-check: allow(R1) — bounded by construction";
        let vs = check_source("crates/tensor/src/a.rs", trailing);
        assert!(vs.iter().all(|v| v.suppressed.is_some()), "{vs:?}");
    }

    #[test]
    fn directive_only_covers_named_rule() {
        let src = "// wr-check: allow(R5) — not the right rule\nfn f() { x.unwrap(); }";
        assert_eq!(active("crates/tensor/src/a.rs", src).len(), 1);
    }

    #[test]
    fn unwrap_in_test_mod_is_fine() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(active("crates/tensor/src/a.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn f() { x.unwrap_or_else(|| 0); y.unwrap_or(1); z.expect_err(\"e\"); }";
        assert!(active("crates/tensor/src/a.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_multiline_block() {
        let src = "// SAFETY: the dispatcher blocks until all jobs\n// complete, keeping the referents alive.\nunsafe impl Send for Job {}";
        assert!(active("crates/runtime/src/lib.rs", src).is_empty());
    }

    #[test]
    fn fn_pointer_type_is_not_an_unsafe_item() {
        let src = "struct J { call: unsafe fn(*const ()) }";
        assert!(active("crates/runtime/src/lib.rs", src).is_empty());
    }

    #[test]
    fn every_rule_has_explain_text_and_roundtrips_names() {
        for &rule in Rule::ALL {
            let text = rule.explain();
            assert!(!text.trim().is_empty(), "{} has no explain text", rule.id());
            assert!(
                text.contains(rule.id()),
                "{} explain text must name the rule id",
                rule.id()
            );
            // Every suppressible rule parses back from both id and slug.
            if rule != Rule::Directive {
                assert_eq!(Rule::from_name(rule.id()), Some(rule));
                assert_eq!(Rule::from_name(rule.slug()), Some(rule));
            }
        }
    }

    #[test]
    fn semantic_rules_are_suppressible_by_directive() {
        let src = "// wr-check: allow(R6) — probe list ids validated at load\nfn f() {}";
        let toks = {
            let mut t = crate::lexer::lex(src);
            crate::lexer::mark_test_regions(&mut t);
            t
        };
        let (_, directives) = check_tokens("crates/ann/src/a.rs", &toks);
        assert_eq!(directives.len(), 1);
        let mut vs = vec![Violation {
            rule: Rule::PanicReachability,
            path: "crates/ann/src/a.rs".to_string(),
            line: 2,
            message: "test".to_string(),
            suppressed: None,
        }];
        apply_suppressions(&mut vs, &directives);
        assert!(vs[0].suppressed.is_some());
    }

    #[test]
    fn blank_line_breaks_safety_adjacency() {
        let src = "// SAFETY: stale comment\n\nfn f() { unsafe { ptr.read() } }";
        assert_eq!(active("crates/tensor/src/a.rs", src).len(), 1);
    }
}
