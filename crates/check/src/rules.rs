//! The `wr-check` rule set and suppression directives.
//!
//! Five rules guard the properties the reproduction's claims rest on
//! (deterministic, panic-free kernels — see DESIGN.md "Static analysis
//! gates"):
//!
//! * **R1 `no-panic`** — no `.unwrap()` / `.expect(…)` / `panic!` / `todo!`
//!   in non-test code of the kernel crates (tensor, linalg, whitening,
//!   autograd, nn, eval, data, core). Kernel code returns `Result` or
//!   carries a justified allow directive.
//! * **R2 `safety-comment`** — every `unsafe` block, fn, impl, or trait is
//!   immediately preceded by a `// SAFETY:` comment (applies everywhere,
//!   tests included). Function-pointer *types* (`unsafe fn(…)`) are exempt.
//! * **R3 `pool-only-parallelism`** — `thread::spawn` and `static mut` are
//!   forbidden outside `crates/runtime`: all parallelism goes through the
//!   shared pool so the bit-determinism contract stays auditable in one
//!   place.
//! * **R4 `determinism`** — `Instant::now` / `SystemTime::now` and
//!   `HashMap` / `HashSet` (iteration-order hazards) are flagged in
//!   result-producing crates. Wall-clock reads are allowlisted only in
//!   `crates/obs` (home of the `Clock` trait's production impl —
//!   everything else routes timing through `wr_obs::Clock`) and
//!   `crates/bench` (the harness timer and probe binaries); the
//!   hash-collection exemption covers `crates/bench` only.
//! * **R5 `float-eq`** — direct `==` / `!=` against a float literal in
//!   non-test code; use a tolerance helper or justify the exact compare.
//!
//! Suppression is explicit and justified, never silent:
//!
//! ```text
//! // wr-check: allow(R1) — index bounded by the loop above
//! ```
//!
//! The directive goes on the offending line or the line directly above it,
//! names one or more rules (`R1`/`no-panic`, …), and must carry a reason;
//! a directive without a justification is itself a violation that cannot
//! be suppressed.

use crate::lexer::{self, Kind, Token};

/// Rule identifiers. `Directive` marks malformed suppression directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    NoPanic,
    SafetyComment,
    PoolOnlyParallelism,
    Determinism,
    FloatEq,
    Directive,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "R1",
            Rule::SafetyComment => "R2",
            Rule::PoolOnlyParallelism => "R3",
            Rule::Determinism => "R4",
            Rule::FloatEq => "R5",
            Rule::Directive => "D0",
        }
    }

    pub fn slug(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::SafetyComment => "safety-comment",
            Rule::PoolOnlyParallelism => "pool-only-parallelism",
            Rule::Determinism => "determinism",
            Rule::FloatEq => "float-eq",
            Rule::Directive => "directive",
        }
    }

    /// Parse a rule name from a directive (`R1` or its slug; case-insensitive).
    pub fn from_name(name: &str) -> Option<Rule> {
        match name.trim().to_ascii_lowercase().as_str() {
            "r1" | "no-panic" => Some(Rule::NoPanic),
            "r2" | "safety-comment" => Some(Rule::SafetyComment),
            "r3" | "pool-only-parallelism" => Some(Rule::PoolOnlyParallelism),
            "r4" | "determinism" => Some(Rule::Determinism),
            "r5" | "float-eq" => Some(Rule::FloatEq),
            _ => None,
        }
    }
}

/// One finding. `suppressed` carries the directive's justification when an
/// allow directive covers the line.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    pub path: String,
    pub line: u32,
    pub message: String,
    pub suppressed: Option<String>,
}

/// Which rules apply to a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    pub r1: bool,
    pub r2: bool,
    pub r3: bool,
    /// R4's wall-clock half: `Instant::now` / `SystemTime::now`. Off only
    /// for `crates/obs` (the one production clock), `crates/bench`, and
    /// wr-check itself.
    pub r4_clock: bool,
    /// R4's iteration-order half: `HashMap` / `HashSet`. Off only for
    /// `crates/bench` and wr-check itself — wr-obs gets no hash exemption.
    pub r4_hash: bool,
    pub r5: bool,
    /// Whole file is test code (under `tests/`, `benches/`, `examples/`):
    /// the non-test-only rules (R1/R4/R5) are skipped entirely.
    pub test_path: bool,
}

/// Crates whose non-test code must be panic-free (R1).
const KERNEL_CRATES: &[&str] =
    &["tensor", "linalg", "whitening", "autograd", "nn", "eval", "data", "core"];

/// Returns the crate name for `crates/<name>/…` paths.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

impl Scope {
    pub fn for_path(rel: &str) -> Scope {
        let krate = crate_of(rel);
        let test_path = rel
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
        // wr-check's own sources are exempt from R4/R5 because rule
        // patterns appear in them as data. Beyond that, the wall-clock
        // half of R4 is allowed only in crates/obs (MonotonicClock — the
        // single production `Instant::now`) and crates/bench (harness
        // timer, probe binaries); the hash half only in crates/bench.
        let bench_or_check = matches!(krate, Some("bench") | Some("check"));
        Scope {
            r1: krate.is_some_and(|c| KERNEL_CRATES.contains(&c)),
            r2: true,
            r3: krate != Some("runtime"),
            r4_clock: !bench_or_check && krate != Some("obs"),
            r4_hash: !bench_or_check,
            r5: krate != Some("check"),
            test_path,
        }
    }
}

/// A parsed allow directive.
#[derive(Debug)]
struct Directive {
    rules: Vec<Rule>,
    reason: String,
    target_line: u32,
}

/// Run every applicable rule on one file. `rel_path` must use `/` separators
/// and be relative to the workspace root (it selects the rule scope).
pub fn check_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let scope = Scope::for_path(rel_path);
    let mut toks = lexer::lex(src);
    lexer::mark_test_regions(&mut toks);

    let mut out: Vec<Violation> = Vec::new();
    let directives = collect_directives(rel_path, &toks, &mut out);

    let idx: Vec<usize> = (0..toks.len()).filter(|&t| !toks[t].is_comment()).collect();
    let prod = |k: usize| -> bool { !scope.test_path && !toks[idx[k]].in_test };

    let mut push = |rule: Rule, line: u32, message: String| {
        out.push(Violation { rule, path: rel_path.to_string(), line, message, suppressed: None });
    };

    for k in 0..idx.len() {
        let t = &toks[idx[k]];
        let text = t.text.as_str();
        let next = |n: usize| idx.get(k + n).map(|&i| &toks[i]);

        // R1: panic paths in kernel-crate production code.
        if scope.r1 && prod(k) && t.kind == Kind::Ident {
            if (text == "unwrap" || text == "expect")
                && k > 0
                && toks[idx[k - 1]].text == "."
                && next(1).is_some_and(|n| n.text == "(")
            {
                push(
                    Rule::NoPanic,
                    t.line,
                    format!(".{text}() in kernel code — return a Result or justify"),
                );
            }
            if (text == "panic" || text == "todo" || text == "unimplemented")
                && next(1).is_some_and(|n| n.text == "!")
            {
                push(
                    Rule::NoPanic,
                    t.line,
                    format!("{text}! in kernel code — return a Result or justify"),
                );
            }
        }

        // R2: unsafe must carry a SAFETY comment.
        if scope.r2 && t.kind == Kind::Ident && text == "unsafe" {
            // `unsafe fn(` with no name is a function-pointer type, not a
            // definition — nothing to justify at the use site.
            let is_fn_pointer_type = next(1).is_some_and(|n| n.text == "fn")
                && next(2).is_some_and(|n| n.text == "(");
            if !is_fn_pointer_type && !has_safety_comment(&toks, idx[k]) {
                let what = next(1).map_or("item", |n| match n.text.as_str() {
                    "{" => "block",
                    "impl" => "impl",
                    "fn" => "fn",
                    "trait" => "trait",
                    _ => "item",
                });
                push(
                    Rule::SafetyComment,
                    t.line,
                    format!("unsafe {what} without an immediately preceding `// SAFETY:` comment"),
                );
            }
        }

        // R3: parallelism primitives outside the pool crate.
        if scope.r3 && t.kind == Kind::Ident {
            if text == "thread"
                && next(1).is_some_and(|n| n.text == "::")
                && next(2).is_some_and(|n| n.text == "spawn")
            {
                push(
                    Rule::PoolOnlyParallelism,
                    t.line,
                    "thread::spawn outside crates/runtime — use the wr-runtime pool".to_string(),
                );
            }
            if text == "static" && next(1).is_some_and(|n| n.text == "mut") {
                push(
                    Rule::PoolOnlyParallelism,
                    t.line,
                    "static mut outside crates/runtime — use atomics or OnceLock".to_string(),
                );
            }
        }

        // R4: determinism hazards in result-producing code.
        if prod(k) && t.kind == Kind::Ident {
            if scope.r4_clock
                && (text == "Instant" || text == "SystemTime")
                && next(1).is_some_and(|n| n.text == "::")
                && next(2).is_some_and(|n| n.text == "now")
            {
                push(
                    Rule::Determinism,
                    t.line,
                    format!("{text}::now in a result-producing path — route timing through wr_obs::Clock"),
                );
            }
            if scope.r4_hash && (text == "HashMap" || text == "HashSet") {
                // One finding per type per file is enough to force the
                // decision (switch to BTreeMap/BTreeSet or justify).
                let first = idx[..k].iter().all(|&i| toks[i].text != *text || toks[i].in_test);
                if first {
                    push(
                        Rule::Determinism,
                        t.line,
                        format!(
                            "{text} has nondeterministic iteration order — use the BTree variant or justify that iteration order never reaches results"
                        ),
                    );
                }
            }
        }

        // R5: direct float equality.
        if scope.r5 && prod(k) && t.kind == Kind::Punct && (text == "==" || text == "!=") {
            let lhs_float = k > 0 && toks[idx[k - 1]].kind == Kind::Float;
            let rhs_float = {
                let mut j = 1;
                if next(j).is_some_and(|n| n.text == "-") {
                    j += 1;
                }
                next(j).is_some_and(|n| n.kind == Kind::Float)
            };
            if lhs_float || rhs_float {
                push(
                    Rule::FloatEq,
                    t.line,
                    format!("direct float {text} — compare with a tolerance or justify the exact comparison"),
                );
            }
        }
    }

    // Apply suppressions.
    for v in &mut out {
        if v.rule == Rule::Directive {
            continue;
        }
        if let Some(d) = directives
            .iter()
            .find(|d| d.target_line == v.line && d.rules.contains(&v.rule))
        {
            v.suppressed = Some(d.reason.clone());
        }
    }
    out
}

/// True when the `unsafe` token at absolute index `ti` is covered by a
/// SAFETY comment: either an earlier comment on the same line, or a
/// contiguous comment-only block on the lines directly above.
fn has_safety_comment(toks: &[Token], ti: usize) -> bool {
    let line = toks[ti].line;
    // Same-line comment before the token (e.g. `/* SAFETY: … */ unsafe {`).
    if toks[..ti]
        .iter()
        .any(|t| t.is_comment() && t.end_line == line && t.text.contains("SAFETY:"))
    {
        return true;
    }
    // Per-line presence maps.
    let mut code_lines = std::collections::BTreeSet::new();
    let mut comment_lines = std::collections::BTreeSet::new();
    let mut safety_lines = std::collections::BTreeSet::new();
    for t in toks {
        if t.is_comment() {
            for l in t.line..=t.end_line {
                comment_lines.insert(l);
            }
            if t.text.contains("SAFETY:") {
                for l in t.line..=t.end_line {
                    safety_lines.insert(l);
                }
            }
        } else {
            for l in t.line..=t.end_line {
                code_lines.insert(l);
            }
        }
    }
    // Walk the contiguous comment-only block immediately above.
    let mut l = line.saturating_sub(1);
    while l >= 1 && comment_lines.contains(&l) && !code_lines.contains(&l) {
        if safety_lines.contains(&l) {
            return true;
        }
        l -= 1;
    }
    false
}

/// Extract allow directives from comments; malformed directives are pushed
/// into `out` as unsuppressible `D0` violations.
fn collect_directives(rel_path: &str, toks: &[Token], out: &mut Vec<Violation>) -> Vec<Directive> {
    let mut directives = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() || !t.text.contains("wr-check:") {
            continue;
        }
        match parse_directive(&t.text) {
            Ok((rules, reason)) => {
                directives.push(Directive {
                    rules,
                    reason,
                    target_line: directive_target(toks, i),
                });
            }
            Err(msg) => out.push(Violation {
                rule: Rule::Directive,
                path: rel_path.to_string(),
                line: t.line,
                message: msg,
                suppressed: None,
            }),
        }
    }
    directives
}

/// The line a directive governs: its own line when the comment trails code,
/// otherwise the next line holding a non-comment token.
fn directive_target(toks: &[Token], comment_idx: usize) -> u32 {
    let line = toks[comment_idx].line;
    if toks
        .iter()
        .any(|t| !t.is_comment() && t.line <= line && t.end_line >= line)
    {
        return line;
    }
    toks.iter()
        .filter(|t| !t.is_comment() && t.line > line)
        .map(|t| t.line)
        .min()
        .unwrap_or(line)
}

/// Parse the allow-directive body (rule list and justification) out of a
/// comment.
fn parse_directive(comment: &str) -> Result<(Vec<Rule>, String), String> {
    let after = comment
        .split("wr-check:")
        .nth(1)
        .ok_or_else(|| "internal: directive marker vanished".to_string())?
        .trim_start();
    let body = after.strip_prefix("allow(").ok_or_else(|| {
        "malformed directive: expected `wr-check: allow(<rule>) — <reason>`".to_string()
    })?;
    let close = body
        .find(')')
        .ok_or_else(|| "malformed directive: missing `)`".to_string())?;
    let mut rules = Vec::new();
    for name in body[..close].split(',') {
        match Rule::from_name(name) {
            Some(r) => rules.push(r),
            None => {
                return Err(format!(
                    "malformed directive: unknown rule {:?} (use R1–R5 or their slugs)",
                    name.trim()
                ))
            }
        }
    }
    if rules.is_empty() {
        return Err("malformed directive: empty rule list".to_string());
    }
    let reason: String = body[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':'))
        .trim()
        .to_string();
    if reason.len() < 5 {
        return Err(
            "directive needs a justification: `wr-check: allow(<rule>) — <reason>`".to_string()
        );
    }
    Ok((rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active(path: &str, src: &str) -> Vec<Violation> {
        check_source(path, src)
            .into_iter()
            .filter(|v| v.suppressed.is_none())
            .collect()
    }

    #[test]
    fn scope_selects_kernel_crates() {
        assert!(Scope::for_path("crates/tensor/src/lib.rs").r1);
        assert!(!Scope::for_path("crates/models/src/lib.rs").r1);
        assert!(!Scope::for_path("crates/runtime/src/lib.rs").r3);
        assert!(Scope::for_path("crates/tensor/src/lib.rs").r3);
        assert!(!Scope::for_path("crates/bench/src/harness.rs").r4_clock);
        assert!(!Scope::for_path("crates/bench/src/harness.rs").r4_hash);
        // wr-obs is the one production home of wall-clock reads, but it
        // gets no hash-collection exemption.
        assert!(!Scope::for_path("crates/obs/src/clock.rs").r4_clock);
        assert!(Scope::for_path("crates/obs/src/clock.rs").r4_hash);
        assert!(Scope::for_path("crates/serve/src/latency.rs").r4_clock);
        assert!(Scope::for_path("crates/tensor/tests/x.rs").test_path);
    }

    #[test]
    fn instant_now_is_allowed_in_obs_but_not_elsewhere() {
        let src = "fn f() -> u64 { Instant::now().elapsed().as_nanos() as u64 }";
        assert!(active("crates/obs/src/clock.rs", src).is_empty());
        let vs = active("crates/serve/src/latency.rs", src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::Determinism);
        assert!(vs[0].message.contains("wr_obs::Clock"));
    }

    #[test]
    fn hash_map_in_obs_is_still_flagged() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let vs = active("crates/obs/src/registry.rs", src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::Determinism);
    }

    #[test]
    fn directive_requires_reason() {
        let src = "// wr-check: allow(R1)\nfn f() { x.unwrap(); }";
        let vs = check_source("crates/tensor/src/a.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::Directive));
        // The unwrap is NOT suppressed by the malformed directive.
        assert!(vs
            .iter()
            .any(|v| v.rule == Rule::NoPanic && v.suppressed.is_none()));
    }

    #[test]
    fn directive_above_and_trailing_both_work() {
        let above = "// wr-check: allow(R1) — bounded by construction\nfn f() { x.unwrap(); }";
        let vs = check_source("crates/tensor/src/a.rs", above);
        assert!(vs.iter().all(|v| v.suppressed.is_some()), "{vs:?}");

        let trailing = "fn f() { x.unwrap(); } // wr-check: allow(R1) — bounded by construction";
        let vs = check_source("crates/tensor/src/a.rs", trailing);
        assert!(vs.iter().all(|v| v.suppressed.is_some()), "{vs:?}");
    }

    #[test]
    fn directive_only_covers_named_rule() {
        let src = "// wr-check: allow(R5) — not the right rule\nfn f() { x.unwrap(); }";
        assert_eq!(active("crates/tensor/src/a.rs", src).len(), 1);
    }

    #[test]
    fn unwrap_in_test_mod_is_fine() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(active("crates/tensor/src/a.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn f() { x.unwrap_or_else(|| 0); y.unwrap_or(1); z.expect_err(\"e\"); }";
        assert!(active("crates/tensor/src/a.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_multiline_block() {
        let src = "// SAFETY: the dispatcher blocks until all jobs\n// complete, keeping the referents alive.\nunsafe impl Send for Job {}";
        assert!(active("crates/runtime/src/lib.rs", src).is_empty());
    }

    #[test]
    fn fn_pointer_type_is_not_an_unsafe_item() {
        let src = "struct J { call: unsafe fn(*const ()) }";
        assert!(active("crates/runtime/src/lib.rs", src).is_empty());
    }

    #[test]
    fn blank_line_breaks_safety_adjacency() {
        let src = "// SAFETY: stale comment\n\nfn f() { unsafe { ptr.read() } }";
        assert_eq!(active("crates/tensor/src/a.rs", src).len(), 1);
    }
}
