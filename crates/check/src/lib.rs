//! `wr-check` — the workspace's std-only static-analysis gate.
//!
//! The paper's headline claim (whitening is a pre-computed, deterministic
//! transform whose benefit survives training) only reproduces if the Rust
//! kernels are bit-deterministic and panic-free — and only *serves* at the
//! ROADMAP's million-user scale if the hot path is provably panic-free and
//! deadlock-free. This crate machine-checks both, with zero external
//! dependencies (DESIGN.md §5):
//!
//! * a comment/string/char-literal-aware tokenizer ([`lexer`]) feeds the
//!   line-level rules R1–R5 ([`rules`]);
//! * a two-pass semantic analyzer ([`symbols`] → [`graph`]) builds the
//!   workspace call graph and runs R6 (panic-reachability from the
//!   hot-path root set, full call chains in diagnostics), R7 (lock-order
//!   cycles and locks held across pool dispatch), and R8 (allocations in
//!   hot loops);
//! * findings render as `file:line` diagnostics or `wr-check/v2` JSON
//!   ([`report`]), and a committed baseline (`check_baseline.json`)
//!   ratchets the justified-suppression count monotonically downward.
//!
//! Run it locally with `cargo run -p wr-check`; `scripts/check.sh` runs
//! `wr-check --ratchet` as a tier-1 gate. See DESIGN.md "Static analysis
//! gates" for the rule set and the allow-directive syntax.

pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod symbols;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

pub use graph::{GraphStats, UnresolvedCall};
pub use rules::{check_source, Rule, Scope, Violation};

/// Result of scanning a directory tree with both passes.
pub struct Scan {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub stats: GraphStats,
    pub unresolved: Vec<UnresolvedCall>,
}

impl Scan {
    /// Count of violations not covered by an allow directive.
    pub fn active(&self) -> usize {
        self.violations.iter().filter(|v| v.suppressed.is_none()).count()
    }
}

/// Recursively collect the workspace's `.rs` files under `root`, skipping
/// build output and VCS metadata. Paths come back sorted for deterministic
/// reports.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scan every `.rs` file under `root` with the full rule set: the
/// line-level rules per file, then the workspace call graph and the
/// semantic rules over all files together. Suppression directives govern
/// both kinds of finding by `path:line`.
pub fn scan_workspace(root: &Path) -> io::Result<Scan> {
    let files = collect_rs_files(root)?;
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    let mut tables: Vec<symbols::FileSymbols> = Vec::new();
    let mut directives: BTreeMap<String, Vec<rules::Directive>> = BTreeMap::new();
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            // Non-UTF-8 or unreadable file: nothing the lexer can do.
            continue;
        };
        files_scanned += 1;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let mut toks = lexer::lex(&src);
        lexer::mark_test_regions(&mut toks);
        let (file_violations, file_directives) = rules::check_tokens(&rel, &toks);
        violations.extend(file_violations);
        tables.push(symbols::extract(&rel, &toks));
        if !file_directives.is_empty() {
            directives.insert(rel, file_directives);
        }
    }
    let analysis = graph::analyze(&tables);
    violations.extend(analysis.violations);
    for v in &mut violations {
        if v.rule == Rule::Directive || v.suppressed.is_some() {
            continue;
        }
        if let Some(ds) = directives.get(&v.path) {
            if let Some(d) =
                ds.iter().find(|d| d.target_line == v.line && d.rules.contains(&v.rule))
            {
                v.suppressed = Some(d.reason.clone());
            }
        }
    }
    violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.id()).cmp(&(b.path.as_str(), b.line, b.rule.id()))
    });
    Ok(Scan {
        files_scanned,
        violations,
        stats: analysis.stats,
        unresolved: analysis.unresolved,
    })
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
