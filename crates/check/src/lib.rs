//! `wr-check` — the workspace's std-only static-analysis gate.
//!
//! The paper's headline claim (whitening is a pre-computed, deterministic
//! transform whose benefit survives training) only reproduces if the Rust
//! kernels are bit-deterministic and panic-free. This crate machine-checks
//! the conventions that keep them that way, with zero external
//! dependencies (DESIGN.md §5): a comment/string/char-literal-aware
//! tokenizer ([`lexer`]) feeds a five-rule analysis ([`rules`]) whose
//! findings render as `file:line` diagnostics or JSON ([`report`]).
//!
//! Run it locally with `cargo run -p wr-check`; `scripts/check.sh` runs it
//! as a tier-1 gate. See DESIGN.md "Static analysis gates" for the rule
//! set (R1–R5) and the justified allow-directive suppression syntax.

pub mod lexer;
pub mod report;
pub mod rules;

use std::io;
use std::path::{Path, PathBuf};

pub use rules::{check_source, Rule, Scope, Violation};

/// Result of scanning a directory tree.
pub struct Scan {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
}

impl Scan {
    /// Count of violations not covered by an allow directive.
    pub fn active(&self) -> usize {
        self.violations.iter().filter(|v| v.suppressed.is_none()).count()
    }
}

/// Recursively collect the workspace's `.rs` files under `root`, skipping
/// build output and VCS metadata. Paths come back sorted for deterministic
/// reports.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scan every `.rs` file under `root` with the full rule set.
pub fn scan_workspace(root: &Path) -> io::Result<Scan> {
    let files = collect_rs_files(root)?;
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            // Non-UTF-8 or unreadable file: nothing the lexer can do.
            continue;
        };
        files_scanned += 1;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        violations.extend(rules::check_source(&rel, &src));
    }
    Ok(Scan { files_scanned, violations })
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
