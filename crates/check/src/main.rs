//! `wr-check` CLI: scan the workspace, print diagnostics, exit non-zero on
//! any unsuppressed violation.
//!
//! ```text
//! cargo run -p wr-check              # human diagnostics for the workspace
//! cargo run -p wr-check -- --json    # machine-readable report (wr-check/v1)
//! cargo run -p wr-check -- --verbose # also list suppressed findings
//! cargo run -p wr-check -- PATH      # scan a different tree
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut verbose = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                eprintln!("usage: wr-check [--json] [--verbose] [PATH]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let start = std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .or_else(|| std::env::current_dir().ok())
                .unwrap_or_else(|| PathBuf::from("."));
            match wr_check::find_workspace_root(&start) {
                Some(r) => r,
                None => {
                    eprintln!("wr-check: no workspace root found above {}", start.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let scan = match wr_check::scan_workspace(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wr-check: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!("{}", wr_check::report::json_report(scan.files_scanned, &scan.violations));
    } else {
        print!(
            "{}",
            wr_check::report::human_report(scan.files_scanned, &scan.violations, verbose)
        );
    }
    if scan.active() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
