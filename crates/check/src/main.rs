//! `wr-check` CLI: scan the workspace, print diagnostics, exit non-zero on
//! any unsuppressed violation.
//!
//! ```text
//! cargo run -p wr-check                    # human diagnostics for the workspace
//! cargo run -p wr-check -- --json          # machine-readable report (wr-check/v2)
//! cargo run -p wr-check -- --verbose       # also list suppressed findings
//! cargo run -p wr-check -- --ratchet       # gate against check_baseline.json
//! cargo run -p wr-check -- --write-baseline  # regenerate the baseline (shrink-only)
//! cargo run -p wr-check -- --explain R6    # print a rule's rationale and syntax
//! cargo run -p wr-check -- PATH            # scan a different tree
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use wr_check::report::{ratchet_failures, Baseline};

const BASELINE_FILE: &str = "check_baseline.json";

fn main() -> ExitCode {
    let mut json = false;
    let mut verbose = false;
    let mut ratchet = false;
    let mut write_baseline = false;
    let mut explain: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--verbose" | "-v" => verbose = true,
            "--ratchet" => ratchet = true,
            "--write-baseline" => write_baseline = true,
            "--explain" => match args.next() {
                Some(name) => explain = Some(name),
                None => {
                    eprintln!("wr-check: --explain needs a rule (R1–R9 or a slug like panic-reachability)");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: wr-check [--json] [--verbose] [--ratchet] [--write-baseline] [--explain RULE] [PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }

    if let Some(name) = explain {
        return match wr_check::Rule::from_name(&name) {
            Some(rule) => {
                println!("{} ({})\n\n{}", rule.id(), rule.slug(), rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("wr-check: unknown rule {name:?} (expected R1–R9 or a slug like lock-order)");
                ExitCode::FAILURE
            }
        };
    }

    let root = match root {
        Some(r) => r,
        None => {
            let start = std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .or_else(|| std::env::current_dir().ok())
                .unwrap_or_else(|| PathBuf::from("."));
            match wr_check::find_workspace_root(&start) {
                Some(r) => r,
                None => {
                    eprintln!("wr-check: no workspace root found above {}", start.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let scan = match wr_check::scan_workspace(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wr-check: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let baseline_path = root.join(BASELINE_FILE);

    if write_baseline {
        // Regeneration is shrink-only: refuse to raise any committed count,
        // so the budget cannot be quietly re-inflated.
        let current = Baseline::from_scan(&scan);
        if scan.active() > 0 {
            eprintln!(
                "wr-check: refusing to write baseline with {} unsuppressed violation(s) — fix or justify them first",
                scan.active()
            );
            return ExitCode::FAILURE;
        }
        if let Ok(text) = std::fs::read_to_string(&baseline_path) {
            match Baseline::parse(&text) {
                Ok(old) => {
                    let raised = old.exceeded_by(&current);
                    if !raised.is_empty() {
                        eprintln!("wr-check: refusing to write a looser baseline:");
                        for r in &raised {
                            eprintln!("  {r}");
                        }
                        eprintln!("  (the suppression budget only ratchets down; remove suppressions instead)");
                        return ExitCode::FAILURE;
                    }
                }
                Err(e) => eprintln!("wr-check: note: existing baseline unreadable ({e}); rewriting"),
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, current.to_json() + "\n") {
            eprintln!("wr-check: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "wr-check: wrote {} ({} suppression(s))",
            baseline_path.display(),
            current.total_suppressed
        );
        return ExitCode::SUCCESS;
    }

    if json {
        println!("{}", wr_check::report::json_report(&scan));
    } else {
        print!("{}", wr_check::report::human_report(&scan, verbose));
    }

    if ratchet {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("wr-check: {}: {e}", baseline_path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!(
                    "wr-check: cannot read {} ({e}) — run `wr-check --write-baseline` from a clean tree",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let failures = ratchet_failures(&scan, &baseline);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("wr-check: ratchet: {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("wr-check: ratchet ok (suppressions within the committed baseline)");
        return ExitCode::SUCCESS;
    }

    if scan.active() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
