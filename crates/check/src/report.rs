//! Diagnostic rendering (`file:line` lines, `wr-check/v2` JSON) and the
//! suppression-ratchet baseline.
//!
//! The ratchet contract: `check_baseline.json` records the justified
//! suppression counts (total, per rule, per crate) the workspace is
//! allowed to carry. `wr-check --ratchet` fails if any unsuppressed
//! finding exists *or* if any suppression count rises above the baseline —
//! so suppressions can only shrink over time. `--write-baseline`
//! regenerates the file but refuses loudly to raise any count.

use crate::rules::Violation;
use crate::symbols::crate_of;
use crate::Scan;
use std::collections::BTreeMap;
use wr_tensor::Json;

/// Render one violation as a compiler-style diagnostic line.
pub fn human_line(v: &Violation) -> String {
    match &v.suppressed {
        None => format!("{}:{}: [{} {}] {}", v.path, v.line, v.rule.id(), v.rule.slug(), v.message),
        Some(reason) => format!(
            "{}:{}: [{} {}] suppressed — {}",
            v.path,
            v.line,
            v.rule.id(),
            v.rule.slug(),
            reason
        ),
    }
}

/// Render the full report for the terminal. Active violations first, then a
/// one-line summary; suppressed findings are listed only with `verbose`.
pub fn human_report(scan: &Scan, verbose: bool) -> String {
    let mut out = String::new();
    let active: Vec<&Violation> =
        scan.violations.iter().filter(|v| v.suppressed.is_none()).collect();
    let suppressed = scan.violations.len() - active.len();
    for v in &active {
        out.push_str(&human_line(v));
        out.push('\n');
    }
    if verbose {
        for v in scan.violations.iter().filter(|v| v.suppressed.is_some()) {
            out.push_str(&human_line(v));
            out.push('\n');
        }
    }
    out.push_str(&format!(
        "wr-check: {} file(s), {} violation(s), {} suppressed | graph: {} fn(s), {} edge(s), {} hot, {} unresolved call(s) ({} name(s))\n",
        scan.files_scanned,
        active.len(),
        suppressed,
        scan.stats.functions,
        scan.stats.edges,
        scan.stats.hot_functions,
        scan.stats.unresolved,
        scan.stats.unresolved_names,
    ));
    out
}

fn encode_violation(v: &Violation) -> Json {
    let mut fields = vec![
        ("rule".to_string(), Json::Str(v.rule.id().to_string())),
        ("name".to_string(), Json::Str(v.rule.slug().to_string())),
        ("path".to_string(), Json::Str(v.path.clone())),
        ("line".to_string(), Json::Num(v.line as f64)),
        ("message".to_string(), Json::Str(v.message.clone())),
    ];
    if let Some(reason) = &v.suppressed {
        fields.push(("suppressed".to_string(), Json::Str(reason.clone())));
    }
    Json::Obj(fields)
}

fn count_obj(counts: &BTreeMap<String, (usize, usize)>) -> Json {
    Json::Obj(
        counts
            .iter()
            .map(|(k, (active, suppressed))| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("active".to_string(), Json::Num(*active as f64)),
                        ("suppressed".to_string(), Json::Num(*suppressed as f64)),
                    ]),
                )
            })
            .collect(),
    )
}

fn tally(violations: &[Violation]) -> (BTreeMap<String, (usize, usize)>, BTreeMap<String, (usize, usize)>) {
    let mut per_rule: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut per_crate: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for v in violations {
        let rule = per_rule.entry(v.rule.id().to_string()).or_default();
        let krate = per_crate.entry(crate_of(&v.path).to_string()).or_default();
        if v.suppressed.is_some() {
            rule.1 += 1;
            krate.1 += 1;
        } else {
            rule.0 += 1;
            krate.0 += 1;
        }
    }
    (per_rule, per_crate)
}

/// Build the machine-readable report (`wr-check/v2` schema): violations and
/// suppressions, per-rule and per-crate counts, call-graph stats, and the
/// full suppression inventory the ratchet is computed from.
pub fn json_report(scan: &Scan) -> String {
    let active: Vec<Json> = scan
        .violations
        .iter()
        .filter(|v| v.suppressed.is_none())
        .map(encode_violation)
        .collect();
    let suppressed: Vec<Json> = scan
        .violations
        .iter()
        .filter(|v| v.suppressed.is_some())
        .map(encode_violation)
        .collect();
    let (per_rule, per_crate) = tally(&scan.violations);
    let graph = Json::Obj(vec![
        ("functions".to_string(), Json::Num(scan.stats.functions as f64)),
        ("edges".to_string(), Json::Num(scan.stats.edges as f64)),
        ("hot_functions".to_string(), Json::Num(scan.stats.hot_functions as f64)),
        ("unresolved_calls".to_string(), Json::Num(scan.stats.unresolved as f64)),
        ("unresolved_names".to_string(), Json::Num(scan.stats.unresolved_names as f64)),
    ]);
    let inventory: Vec<Json> = scan
        .violations
        .iter()
        .filter_map(|v| {
            v.suppressed.as_ref().map(|reason| {
                Json::Obj(vec![
                    ("rule".to_string(), Json::Str(v.rule.id().to_string())),
                    ("path".to_string(), Json::Str(v.path.clone())),
                    ("line".to_string(), Json::Num(v.line as f64)),
                    ("reason".to_string(), Json::Str(reason.clone())),
                ])
            })
        })
        .collect();
    let doc = Json::Obj(vec![
        ("schema".to_string(), Json::Str("wr-check/v2".to_string())),
        ("files_scanned".to_string(), Json::Num(scan.files_scanned as f64)),
        ("violations".to_string(), Json::Arr(active)),
        ("suppressed".to_string(), Json::Arr(suppressed)),
        ("rules".to_string(), count_obj(&per_rule)),
        ("crates".to_string(), count_obj(&per_crate)),
        ("graph".to_string(), graph),
        ("suppressions".to_string(), Json::Arr(inventory)),
    ]);
    doc.to_string()
}

/// The committed suppression budget: total, per rule, per crate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub total_suppressed: usize,
    pub rules: BTreeMap<String, usize>,
    pub crates: BTreeMap<String, usize>,
}

impl Baseline {
    /// Compute the current suppression counts from a scan.
    pub fn from_scan(scan: &Scan) -> Baseline {
        let (per_rule, per_crate) = tally(&scan.violations);
        Baseline {
            total_suppressed: scan.violations.iter().filter(|v| v.suppressed.is_some()).count(),
            rules: per_rule.into_iter().filter(|(_, c)| c.1 > 0).map(|(k, c)| (k, c.1)).collect(),
            crates: per_crate.into_iter().filter(|(_, c)| c.1 > 0).map(|(k, c)| (k, c.1)).collect(),
        }
    }

    /// Serialize to the committed `check_baseline.json` form.
    pub fn to_json(&self) -> String {
        let counts = |m: &BTreeMap<String, usize>| {
            Json::Obj(m.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect())
        };
        Json::Obj(vec![
            ("schema".to_string(), Json::Str("wr-check-baseline/v1".to_string())),
            ("total_suppressed".to_string(), Json::Num(self.total_suppressed as f64)),
            ("rules".to_string(), counts(&self.rules)),
            ("crates".to_string(), counts(&self.crates)),
        ])
        .to_string()
    }

    /// Parse a committed baseline file.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        if doc.get("schema").and_then(|s| s.as_str()) != Some("wr-check-baseline/v1") {
            return Err("baseline schema must be wr-check-baseline/v1".to_string());
        }
        let total = doc
            .get("total_suppressed")
            .and_then(|n| n.as_usize())
            .ok_or("baseline missing total_suppressed")?;
        let read_map = |key: &str| -> Result<BTreeMap<String, usize>, String> {
            let mut out = BTreeMap::new();
            if let Some(Json::Obj(fields)) = doc.get(key) {
                for (k, v) in fields {
                    out.insert(
                        k.clone(),
                        v.as_usize().ok_or_else(|| format!("baseline {key}.{k} not a count"))?,
                    );
                }
            }
            Ok(out)
        };
        Ok(Baseline { total_suppressed: total, rules: read_map("rules")?, crates: read_map("crates")? })
    }

    /// The ways `current` exceeds this baseline (empty = within budget).
    /// A key missing from the baseline has budget zero.
    pub fn exceeded_by(&self, current: &Baseline) -> Vec<String> {
        let mut out = Vec::new();
        if current.total_suppressed > self.total_suppressed {
            out.push(format!(
                "total suppressions rose: {} > baseline {}",
                current.total_suppressed, self.total_suppressed
            ));
        }
        for (k, &n) in &current.rules {
            let budget = self.rules.get(k).copied().unwrap_or(0);
            if n > budget {
                out.push(format!("rule {k} suppressions rose: {n} > baseline {budget}"));
            }
        }
        for (k, &n) in &current.crates {
            let budget = self.crates.get(k).copied().unwrap_or(0);
            if n > budget {
                out.push(format!("crate {k} suppressions rose: {n} > baseline {budget}"));
            }
        }
        out
    }
}

/// Evaluate the ratchet: active findings fail outright; suppression counts
/// above the committed baseline fail. Returns failure messages (empty =
/// gate passes).
pub fn ratchet_failures(scan: &Scan, baseline: &Baseline) -> Vec<String> {
    let mut out = Vec::new();
    let active = scan.active();
    if active > 0 {
        out.push(format!("{active} unsuppressed violation(s) — the ratchet admits zero"));
    }
    out.extend(baseline.exceeded_by(&Baseline::from_scan(scan)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::check_source;
    use crate::GraphStats;

    fn scan_of(violations: Vec<Violation>) -> Scan {
        Scan {
            files_scanned: 1,
            violations,
            stats: GraphStats::default(),
            unresolved: Vec::new(),
        }
    }

    #[test]
    fn json_report_parses_back_with_v2_fields() {
        let vs = check_source(
            "crates/tensor/src/a.rs",
            "fn f() { x.unwrap(); } // wr-check: allow(R1) — test reason here",
        );
        let scan = scan_of(vs);
        let text = json_report(&scan);
        let doc = Json::parse(&text).expect("report must be valid JSON");
        assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("wr-check/v2"));
        let suppressed = doc.get("suppressed").and_then(|a| a.as_arr()).expect("suppressed array");
        assert_eq!(suppressed.len(), 1);
        assert_eq!(doc.get("violations").and_then(|a| a.as_arr()).map(|a| a.len()), Some(0));
        // v2 additions: per-rule counts, graph stats, suppression inventory.
        let rules = doc.get("rules").expect("rules object");
        assert_eq!(
            rules.get("R1").and_then(|r| r.get("suppressed")).and_then(|n| n.as_usize()),
            Some(1)
        );
        let crates = doc.get("crates").expect("crates object");
        assert_eq!(
            crates.get("tensor").and_then(|r| r.get("suppressed")).and_then(|n| n.as_usize()),
            Some(1)
        );
        assert!(doc.get("graph").and_then(|g| g.get("functions")).is_some());
        let inv = doc.get("suppressions").and_then(|a| a.as_arr()).expect("inventory");
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].get("rule").and_then(|s| s.as_str()), Some("R1"));
    }

    #[test]
    fn human_line_includes_rule_and_position() {
        let vs = check_source("crates/tensor/src/a.rs", "fn f() { x.unwrap(); }");
        assert_eq!(vs.len(), 1);
        let line = human_line(&vs[0]);
        assert!(line.starts_with("crates/tensor/src/a.rs:1: [R1 no-panic]"), "{line}");
    }

    #[test]
    fn baseline_roundtrips_and_ratchets() {
        let vs = check_source(
            "crates/tensor/src/a.rs",
            "fn f() { x.unwrap(); } // wr-check: allow(R1) — test reason here",
        );
        let scan = scan_of(vs);
        let current = Baseline::from_scan(&scan);
        assert_eq!(current.total_suppressed, 1);
        assert_eq!(current.rules.get("R1"), Some(&1));
        let parsed = Baseline::parse(&current.to_json()).expect("roundtrip");
        assert_eq!(parsed, current);

        // Within budget: passes.
        assert!(ratchet_failures(&scan, &current).is_empty());
        // Tighter budget: fails on total, rule, and crate axes.
        let tight = Baseline::default();
        let failures = ratchet_failures(&scan, &tight);
        assert!(failures.iter().any(|f| f.contains("total suppressions rose")), "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("rule R1")), "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("crate tensor")), "{failures:?}");
    }

    #[test]
    fn ratchet_rejects_active_findings_even_within_budget() {
        let vs = check_source("crates/tensor/src/a.rs", "fn f() { x.unwrap(); }");
        let scan = scan_of(vs);
        let loose = Baseline {
            total_suppressed: 99,
            rules: BTreeMap::new(),
            crates: BTreeMap::new(),
        };
        let failures = ratchet_failures(&scan, &loose);
        assert!(failures.iter().any(|f| f.contains("unsuppressed")), "{failures:?}");
    }
}
