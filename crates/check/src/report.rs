//! Diagnostic rendering: human `file:line` lines and machine-readable JSON.

use crate::rules::Violation;
use wr_tensor::Json;

/// Render one violation as a compiler-style diagnostic line.
pub fn human_line(v: &Violation) -> String {
    match &v.suppressed {
        None => format!("{}:{}: [{} {}] {}", v.path, v.line, v.rule.id(), v.rule.slug(), v.message),
        Some(reason) => format!(
            "{}:{}: [{} {}] suppressed — {}",
            v.path,
            v.line,
            v.rule.id(),
            v.rule.slug(),
            reason
        ),
    }
}

/// Render the full report for the terminal. Active violations first, then a
/// one-line summary; suppressed findings are listed only with `verbose`.
pub fn human_report(files_scanned: usize, violations: &[Violation], verbose: bool) -> String {
    let mut out = String::new();
    let active: Vec<&Violation> = violations.iter().filter(|v| v.suppressed.is_none()).collect();
    let suppressed = violations.len() - active.len();
    for v in &active {
        out.push_str(&human_line(v));
        out.push('\n');
    }
    if verbose {
        for v in violations.iter().filter(|v| v.suppressed.is_some()) {
            out.push_str(&human_line(v));
            out.push('\n');
        }
    }
    out.push_str(&format!(
        "wr-check: {} file(s), {} violation(s), {} suppressed\n",
        files_scanned,
        active.len(),
        suppressed
    ));
    out
}

/// Build the machine-readable report (`wr-check/v1` schema).
pub fn json_report(files_scanned: usize, violations: &[Violation]) -> String {
    let encode = |v: &Violation| {
        let mut fields = vec![
            ("rule".to_string(), Json::Str(v.rule.id().to_string())),
            ("name".to_string(), Json::Str(v.rule.slug().to_string())),
            ("path".to_string(), Json::Str(v.path.clone())),
            ("line".to_string(), Json::Num(v.line as f64)),
            ("message".to_string(), Json::Str(v.message.clone())),
        ];
        if let Some(reason) = &v.suppressed {
            fields.push(("suppressed".to_string(), Json::Str(reason.clone())));
        }
        Json::Obj(fields)
    };
    let active: Vec<Json> =
        violations.iter().filter(|v| v.suppressed.is_none()).map(encode).collect();
    let suppressed: Vec<Json> =
        violations.iter().filter(|v| v.suppressed.is_some()).map(encode).collect();
    let doc = Json::Obj(vec![
        ("schema".to_string(), Json::Str("wr-check/v1".to_string())),
        ("files_scanned".to_string(), Json::Num(files_scanned as f64)),
        ("violations".to_string(), Json::Arr(active)),
        ("suppressed".to_string(), Json::Arr(suppressed)),
    ]);
    doc.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::check_source;

    #[test]
    fn json_report_parses_back() {
        let vs = check_source(
            "crates/tensor/src/a.rs",
            "fn f() { x.unwrap(); } // wr-check: allow(R1) — test reason here",
        );
        let text = json_report(1, &vs);
        let doc = Json::parse(&text).expect("report must be valid JSON");
        assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("wr-check/v1"));
        let suppressed = doc.get("suppressed").and_then(|a| a.as_arr()).expect("suppressed array");
        assert_eq!(suppressed.len(), 1);
        assert_eq!(
            doc.get("violations").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(0)
        );
    }

    #[test]
    fn human_line_includes_rule_and_position() {
        let vs = check_source("crates/tensor/src/a.rs", "fn f() { x.unwrap(); }");
        assert_eq!(vs.len(), 1);
        let line = human_line(&vs[0]);
        assert!(line.starts_with("crates/tensor/src/a.rs:1: [R1 no-panic]"), "{line}");
    }
}
