//! Pass 1 of the semantic analyzer: per-file symbol extraction.
//!
//! Walks the token stream once per file and records item-level structure —
//! function definitions (with impl/trait qualification and arity), call
//! expressions (plain, path, and method form), panic sites (`unwrap` /
//! `expect` / `panic!`-family / non-literal indexing), allocation calls
//! inside loops, and `Mutex` guard acquisitions with an approximate guard
//! extent. Pass 2 ([`crate::graph`]) links the per-file tables into a
//! workspace call graph.
//!
//! The extractor is a heuristic parser over tokens, not a full grammar:
//! the known approximations (closure braces in `for` headers, turbofish
//! calls, guard extents) are documented in DESIGN.md §5b under "resolution
//! limits". It never panics on malformed source — confusion degrades to
//! "no symbol recorded", and unresolved calls surface in the graph's
//! explicit `unresolved` bucket rather than vanishing.

use crate::lexer::{Kind, Token};

/// The `parallel_*` entry points of the wr-runtime pool. A closure passed
/// to one of these runs on pool workers: its body becomes a pseudo-function
/// in the symbol table (see [`FnDef::is_closure_root`]).
pub const PARALLEL_FNS: &[&str] =
    &["parallel_for", "parallel_for_chunks", "parallel_map", "parallel_chunks_mut"];

/// How a panic can be reached at a recorded site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    Unwrap,
    Expect,
    Macro,
    Index,
}

/// A call expression recorded inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// `Some(Type)` for `Type::name(…)` path calls (`Self` already
    /// resolved to the enclosing impl type).
    pub recv: Option<String>,
    /// True for `.name(…)` method-call syntax.
    pub is_method: bool,
    /// True for `self.name(…)` — the one method-call form whose
    /// name-based resolution is reliable enough for the lock analysis.
    pub on_self: bool,
    /// Argument count, excluding any method receiver.
    pub arity: usize,
    pub line: u32,
    /// Filtered-token index of the callee name (orders the call against
    /// lock-guard extents).
    pub k: usize,
}

/// A potential panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub kind: PanicKind,
    /// Display text for diagnostics (e.g. `.unwrap()` or `` `seen[row]` ``).
    pub what: String,
    pub line: u32,
}

/// An allocation call inside a loop.
#[derive(Debug, Clone)]
pub struct AllocSite {
    pub what: String,
    pub line: u32,
}

/// A `.lock()` acquisition and the approximate extent of its guard.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Crate-qualified lock class, e.g. `obs::shards` — the receiver
    /// field/binding the mutex lives in, not the individual instance.
    pub class: String,
    pub line: u32,
    /// Filtered-token index of the `lock` identifier.
    pub k: usize,
    /// Filtered-token index at which the guard is dead (exclusive):
    /// end of statement for temporary guards, end of the enclosing block
    /// for `let`-bound guards, end of the body for `if let` / `while let`.
    pub scope_end_k: usize,
}

/// One function (or parallel-closure pseudo-function) and everything the
/// rules need to know about its body.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// `Type::name` inside impl/trait blocks, bare `name` for free
    /// functions, `parent::{closure@LINE}` for parallel-closure bodies.
    pub qual: String,
    pub line: u32,
    /// Parameter count excluding any `self` receiver.
    pub arity: usize,
    pub has_self: bool,
    pub is_test: bool,
    /// Body of a closure passed to a `parallel_*` entry point — it runs
    /// on pool workers.
    pub is_closure_root: bool,
    /// For closure pseudo-functions: index (within the same file's `fns`)
    /// of the enclosing function.
    pub parent: Option<usize>,
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
    pub allocs: Vec<AllocSite>,
    pub locks: Vec<LockSite>,
}

/// Symbol table for one file.
#[derive(Debug, Clone)]
pub struct FileSymbols {
    pub path: String,
    /// Crate name for `crates/<name>/…` paths, else `"workspace"`.
    pub krate: String,
    /// Whole file is test-tree code (`tests/`, `benches/`, `examples/`).
    pub test_path: bool,
    pub fns: Vec<FnDef>,
}

/// Returns the crate name for `crates/<name>/…` paths.
pub fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("workspace")
}

// ---------------------------------------------------------------------------
// Pre-scan: classify every `{` (impl body, trait body, fn body, loop body)
// and mark token ranges the main walk must not read as expressions
// (attributes, item signatures).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Open {
    Impl(String),
    Trait(String),
    Fn { name: String, arity: usize, has_self: bool, line: u32, in_test: bool },
    Loop { var: Option<String> },
}

struct Stream<'a> {
    toks: &'a [Token],
    /// Indices of non-comment tokens.
    ids: Vec<usize>,
    /// Partner index for each bracket token (filtered positions).
    partner: Vec<Option<usize>>,
    /// Positions the expression walk must skip (attributes, signatures).
    skip: Vec<bool>,
    /// Classification for `{` positions.
    opens: Vec<Option<Open>>,
}

impl<'a> Stream<'a> {
    fn text(&self, k: usize) -> &str {
        &self.toks[self.ids[k]].text
    }
    fn kind(&self, k: usize) -> Kind {
        self.toks[self.ids[k]].kind
    }
    fn line(&self, k: usize) -> u32 {
        self.toks[self.ids[k]].line
    }
    fn in_test(&self, k: usize) -> bool {
        self.toks[self.ids[k]].in_test
    }
    fn len(&self) -> usize {
        self.ids.len()
    }
    fn is(&self, k: usize, s: &str) -> bool {
        k < self.len() && self.text(k) == s
    }
}

fn build_stream(toks: &[Token]) -> Stream<'_> {
    let ids: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let n = ids.len();
    let mut partner = vec![None; n];
    let mut stacks: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for k in 0..n {
        let which = match toks[ids[k]].text.as_str() {
            "(" | ")" => 0,
            "[" | "]" => 1,
            "{" | "}" => 2,
            _ => continue,
        };
        let open = matches!(toks[ids[k]].text.as_str(), "(" | "[" | "{");
        if open {
            stacks[which].push(k);
        } else if let Some(o) = stacks[which].pop() {
            partner[o] = Some(k);
            partner[k] = Some(o);
        }
    }
    Stream { toks, ids, partner, skip: vec![false; n], opens: vec![None; n] }
}

/// Skip a `<…>` generic group starting at `k` (which must be `<`); returns
/// the position after the closing `>`. Bails at a safety horizon so a
/// misparse can't loop.
fn skip_angles(s: &Stream, mut k: usize) -> usize {
    let mut depth = 0i32;
    let mut brace = 0i32;
    let start = k;
    while k < s.len() && k - start < 512 {
        match s.text(k) {
            "<" | "<<" if brace == 0 => depth += if s.text(k) == "<<" { 2 } else { 1 },
            ">" if brace == 0 => depth -= 1,
            ">>" if brace == 0 => depth -= 2,
            "{" => brace += 1,
            "}" => brace -= 1,
            _ => {}
        }
        k += 1;
        if depth <= 0 {
            return k;
        }
    }
    k
}

/// Parse a parameter list starting at the `(` position. Returns
/// `(arity_excluding_self, has_self, position_after_close)`.
fn parse_params(s: &Stream, open: usize) -> (usize, bool, usize) {
    let close = match s.partner[open] {
        Some(c) => c,
        None => return (0, false, s.len()),
    };
    let mut count = 0usize;
    let mut has_self = false;
    let mut depth = (0i32, 0i32, 0i32); // paren, bracket, angle
    let mut cur_tokens = 0usize;
    let mut first_param_self = false;
    for k in open + 1..close {
        let t = s.text(k);
        match t {
            "(" => depth.0 += 1,
            ")" => depth.0 -= 1,
            "[" => depth.1 += 1,
            "]" => depth.1 -= 1,
            "<" => depth.2 += 1,
            "<<" => depth.2 += 2,
            ">" => depth.2 -= 1,
            ">>" => depth.2 -= 2,
            "," if depth == (0, 0, 0) => {
                if cur_tokens > 0 {
                    count += 1;
                    if count == 1 && first_param_self {
                        has_self = true;
                    }
                }
                cur_tokens = 0;
                continue;
            }
            _ => {}
        }
        if t == "self" && count == 0 && depth == (0, 0, 0) {
            first_param_self = true;
        }
        cur_tokens += 1;
    }
    if cur_tokens > 0 {
        count += 1;
        if count == 1 && first_param_self {
            has_self = true;
        }
    }
    let arity = if has_self { count.saturating_sub(1) } else { count };
    (arity, has_self, close + 1)
}

/// First `{` at zero paren/bracket depth from `k` (used for loop and impl
/// headers, where a brace inside parens belongs to a closure argument).
fn find_body_open(s: &Stream, mut k: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while k < s.len() {
        match s.text(k) {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return Some(k),
            ";" if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        k += 1;
    }
    None
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "pub", "use", "mod", "struct", "enum", "trait", "impl", "type", "const",
    "static", "unsafe", "extern", "crate", "super", "as", "in", "where", "dyn", "move", "box",
    "async", "await", "true", "false",
];

fn pre_scan(s: &mut Stream) {
    let mut c = 0usize;
    while c < s.len() {
        let t = s.text(c).to_string();
        match t.as_str() {
            // Attribute: skip `#[ … ]` wholesale.
            "#" if s.is(c + 1, "[") => {
                if let Some(close) = s.partner[c + 1] {
                    for k in c..=close {
                        s.skip[k] = true;
                    }
                    c = close + 1;
                } else {
                    c += 1;
                }
            }
            "impl" => {
                let header_start = c;
                let mut k = c + 1;
                if s.is(k, "<") {
                    k = skip_angles(s, k);
                }
                // Collect the implemented-on type: last ident at angle
                // depth zero before `{` / `where`, restarting after `for`.
                let mut name: Option<String> = None;
                let mut body = None;
                let mut angle = 0i32;
                while k < s.len() {
                    let tk = s.text(k);
                    match tk {
                        "<" => angle += 1,
                        "<<" => angle += 2,
                        ">" => angle -= 1,
                        ">>" => angle -= 2,
                        "for" if angle <= 0 => name = None,
                        "where" if angle <= 0 => {
                            body = find_body_open(s, k);
                            break;
                        }
                        "{" if angle <= 0 => {
                            body = Some(k);
                            break;
                        }
                        ";" if angle <= 0 => break, // e.g. `impl Trait` in a type position gone wrong
                        _ => {
                            if angle <= 0 && s.kind(k) == Kind::Ident && !KEYWORDS.contains(&tk) {
                                name = Some(tk.to_string());
                            }
                        }
                    }
                    k += 1;
                }
                match body {
                    Some(b) => {
                        s.opens[b] = Some(Open::Impl(name.unwrap_or_else(|| "?".to_string())));
                        for i in header_start..b {
                            s.skip[i] = true;
                        }
                        c = b; // the `{` itself is processed by the walk
                    }
                    None => c = k.max(c + 1),
                }
            }
            "trait" => {
                let header_start = c;
                let name = if c + 1 < s.len() && s.kind(c + 1) == Kind::Ident {
                    s.text(c + 1).to_string()
                } else {
                    "?".to_string()
                };
                match find_body_open(s, c + 1) {
                    Some(b) => {
                        s.opens[b] = Some(Open::Trait(name));
                        for i in header_start..b {
                            s.skip[i] = true;
                        }
                        c = b;
                    }
                    None => c += 1,
                }
            }
            "fn" => {
                // `fn` not followed by a name is a function-pointer type.
                if c + 1 >= s.len() || s.kind(c + 1) != Kind::Ident {
                    c += 1;
                    continue;
                }
                let name = s.text(c + 1).to_string();
                let line = s.line(c);
                let in_test = s.in_test(c);
                let mut k = c + 2;
                if s.is(k, "<") {
                    k = skip_angles(s, k);
                }
                if !s.is(k, "(") {
                    c += 1;
                    continue;
                }
                let (arity, has_self, after) = parse_params(s, k);
                // Find the body `{` (or `;` for a bodyless trait method).
                let mut j = after;
                let mut body = None;
                while j < s.len() {
                    match s.text(j) {
                        "{" => {
                            body = Some(j);
                            break;
                        }
                        ";" => break,
                        _ => j += 1,
                    }
                }
                match body {
                    Some(b) => {
                        s.opens[b] = Some(Open::Fn { name, arity, has_self, line, in_test });
                        for i in c..b {
                            s.skip[i] = true;
                        }
                        c = b;
                    }
                    None => {
                        for i in c..j.min(s.len()) {
                            s.skip[i] = true;
                        }
                        c = j + 1;
                    }
                }
            }
            "for" | "while" | "loop" => {
                // Loop headers stay visible to the expression walk (they
                // contain calls); only the `{` gets classified.
                if let Some(b) = find_body_open(s, c + 1) {
                    if s.opens[b].is_none() {
                        // `for IDENT in <range-expr> {` exposes a
                        // bounds-carrying loop variable.
                        let var = if t == "for"
                            && c + 2 < s.len()
                            && s.kind(c + 1) == Kind::Ident
                            && s.is(c + 2, "in")
                        {
                            let mut has_range = false;
                            let mut depth = 0i32;
                            for k in c + 3..b {
                                match s.text(k) {
                                    "(" | "[" => depth += 1,
                                    ")" | "]" => depth -= 1,
                                    ".." | "..=" if depth == 0 => has_range = true,
                                    _ => {}
                                }
                            }
                            if has_range {
                                Some(s.text(c + 1).to_string())
                            } else {
                                None
                            }
                        } else {
                            None
                        };
                        s.opens[b] = Some(Open::Loop { var });
                    }
                }
                c += 1;
            }
            _ => c += 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Main walk: build FnDefs and record events into the innermost function.
// ---------------------------------------------------------------------------

enum Frame {
    Plain,
    Type(Option<String>), // previous type context (impl or trait)
    Fn,
    Loop { pushed_var: bool },
}

struct Builder {
    def: FnDef,
    /// Range-loop variables currently in scope (plus closure params for
    /// parallel-closure pseudo-functions).
    range_vars: Vec<String>,
    loop_depth: usize,
}

const ALLOC_TYPES: &[(&str, &[&str])] = &[
    ("Vec", &["new", "with_capacity", "from"]),
    ("Box", &["new"]),
    ("String", &["new", "from", "with_capacity"]),
];
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned"];
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Extract the symbol table for one file. `rel_path` selects the crate.
pub fn extract(rel_path: &str, toks: &[Token]) -> FileSymbols {
    let mut s = build_stream(toks);
    pre_scan(&mut s);
    let krate = crate_of(rel_path).to_string();
    let test_path = rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");

    let mut fns: Vec<FnDef> = Vec::new();
    let mut builders: Vec<Builder> = Vec::new(); // stack; innermost last
    let mut frames: Vec<Frame> = Vec::new();
    let mut open_braces: Vec<usize> = Vec::new();
    let mut type_ctx: Option<String> = None;
    let mut stmt_start = 0usize;
    // (end_k inclusive, builder slot) for active parallel-closure bodies.
    let mut closure_ends: Vec<usize> = Vec::new();
    // Regions discovered ahead of the cursor: (start_k, end_k, params, parent_qual, line).
    let mut pending: Vec<(usize, usize, Vec<String>, String, u32, bool)> = Vec::new();

    let finish = |builders: &mut Vec<Builder>, fns: &mut Vec<FnDef>| {
        if let Some(b) = builders.pop() {
            fns.push(b.def);
        }
    };

    let mut k = 0usize;
    while k < s.len() {
        // Close any expression-bodied closure regions that ended before here.
        while let Some(&end) = closure_ends.last() {
            if k > end {
                closure_ends.pop();
                finish(&mut builders, &mut fns);
            } else {
                break;
            }
        }
        // Open any closure region starting here.
        if let Some(pos) = pending.iter().position(|r| r.0 == k) {
            let (_, end_k, params, parent_qual, line, in_test) = pending.remove(pos);
            let def = FnDef {
                name: "{closure}".to_string(),
                qual: format!("{parent_qual}::{{closure@{line}}}"),
                line,
                arity: params.len(),
                has_self: false,
                is_test: in_test || test_path,
                is_closure_root: true,
                parent: None, // linked by qual prefix in pass 2
                calls: Vec::new(),
                panics: Vec::new(),
                allocs: Vec::new(),
                locks: Vec::new(),
            };
            builders.push(Builder { def, range_vars: params, loop_depth: 0 });
            closure_ends.push(end_k);
        }

        let text = s.text(k).to_string();

        if text == "{" {
            match s.opens[k].take() {
                Some(Open::Impl(t)) => {
                    frames.push(Frame::Type(type_ctx.take()));
                    type_ctx = Some(t);
                }
                Some(Open::Trait(t)) => {
                    frames.push(Frame::Type(type_ctx.take()));
                    type_ctx = Some(t);
                }
                Some(Open::Fn { name, arity, has_self, line, in_test }) => {
                    let qual = match &type_ctx {
                        Some(t) => format!("{t}::{name}"),
                        None => name.clone(),
                    };
                    let def = FnDef {
                        name,
                        qual,
                        line,
                        arity,
                        has_self,
                        is_test: in_test || test_path,
                        is_closure_root: false,
                        parent: None,
                        calls: Vec::new(),
                        panics: Vec::new(),
                        allocs: Vec::new(),
                        locks: Vec::new(),
                    };
                    builders.push(Builder { def, range_vars: Vec::new(), loop_depth: 0 });
                    frames.push(Frame::Fn);
                }
                Some(Open::Loop { var }) => {
                    let pushed = if let Some(b) = builders.last_mut() {
                        b.loop_depth += 1;
                        if let Some(v) = var {
                            b.range_vars.push(v);
                            true
                        } else {
                            false
                        }
                    } else {
                        false
                    };
                    frames.push(Frame::Loop { pushed_var: pushed });
                }
                None => frames.push(Frame::Plain),
            }
            open_braces.push(k);
            stmt_start = k + 1;
            k += 1;
            continue;
        }
        if text == "}" {
            match frames.pop() {
                Some(Frame::Type(prev)) => type_ctx = prev,
                Some(Frame::Fn) => finish(&mut builders, &mut fns),
                Some(Frame::Loop { pushed_var }) => {
                    if let Some(b) = builders.last_mut() {
                        b.loop_depth = b.loop_depth.saturating_sub(1);
                        if pushed_var {
                            b.range_vars.pop();
                        }
                    }
                }
                _ => {}
            }
            open_braces.pop();
            stmt_start = k + 1;
            k += 1;
            continue;
        }
        if text == ";" {
            stmt_start = k + 1;
            k += 1;
            continue;
        }
        if s.skip[k] || builders.is_empty() {
            k += 1;
            continue;
        }

        record_events(
            &s,
            k,
            stmt_start,
            &open_braces,
            &krate,
            builders.last_mut().expect("checked non-empty"),
            &mut pending,
        );
        k += 1;
    }
    while !builders.is_empty() {
        finish(&mut builders, &mut fns);
    }
    // Stable order: by source line, closures after their parents.
    fns.sort_by_key(|f| (f.line, f.is_closure_root));
    FileSymbols { path: rel_path.to_string(), krate, test_path, fns }
}

/// Record call/panic/alloc/lock events at position `k` into `b`.
#[allow(clippy::too_many_arguments)]
fn record_events(
    s: &Stream,
    k: usize,
    stmt_start: usize,
    open_braces: &[usize],
    krate: &str,
    b: &mut Builder,
    pending: &mut Vec<(usize, usize, Vec<String>, String, u32, bool)>,
) {
    let text = s.text(k);
    let kind = s.kind(k);
    let line = s.line(k);
    let prev = |n: usize| k.checked_sub(n).map(|i| s.text(i));

    // --- panic macros & alloc macros ---
    if kind == Kind::Ident && s.is(k + 1, "!") {
        if PANIC_MACROS.contains(&text) {
            b.def.panics.push(PanicSite {
                kind: PanicKind::Macro,
                what: format!("{text}!"),
                line,
            });
        } else if ALLOC_MACROS.contains(&text) && b.loop_depth > 0 {
            b.def.allocs.push(AllocSite { what: format!("{text}!"), line });
        }
        return;
    }

    // --- method calls, unwrap/expect, allocs, locks: `.name(` ---
    if kind == Kind::Ident && prev(1) == Some(".") && s.is(k + 1, "(") {
        match text {
            "unwrap" => b.def.panics.push(PanicSite {
                kind: PanicKind::Unwrap,
                what: ".unwrap()".to_string(),
                line,
            }),
            "expect" => b.def.panics.push(PanicSite {
                kind: PanicKind::Expect,
                what: ".expect(…)".to_string(),
                line,
            }),
            "lock" => {
                let class = lock_class(s, k, krate);
                let scope_end_k = guard_scope_end(s, k, stmt_start, open_braces);
                b.def.locks.push(LockSite { class, line, k, scope_end_k });
            }
            _ => {}
        }
        if ALLOC_METHODS.contains(&text) && b.loop_depth > 0 {
            b.def.allocs.push(AllocSite { what: format!(".{text}()"), line });
        }
        let arity = call_arity(s, k + 1, pending, b, text, krate);
        b.def.calls.push(CallSite {
            name: text.to_string(),
            recv: None,
            is_method: true,
            on_self: prev(2) == Some("self"),
            arity,
            line,
            k,
        });
        return;
    }

    // --- path & plain calls: `name(` not preceded by `.` ---
    if kind == Kind::Ident && s.is(k + 1, "(") && prev(1) != Some(".") && !KEYWORDS.contains(&text)
    {
        let (recv, is_path) = if prev(1) == Some("::") {
            let r = k.checked_sub(2).filter(|&i| s.kind(i) == Kind::Ident).map(|i| {
                let t = s.text(i);
                if t == "Self" { "Self".to_string() } else { t.to_string() }
            });
            (r, true)
        } else {
            (None, false)
        };
        // Allocation constructors.
        if b.loop_depth > 0 {
            if let Some(r) = &recv {
                if ALLOC_TYPES.iter().any(|(t, ms)| t == r && ms.contains(&text)) {
                    b.def.allocs.push(AllocSite { what: format!("{r}::{text}()"), line });
                }
            }
        }
        let arity = call_arity(s, k + 1, pending, b, text, krate);
        b.def.calls.push(CallSite {
            name: text.to_string(),
            recv: if is_path { recv } else { None },
            is_method: false,
            on_self: false,
            arity,
            line,
            k,
        });
        return;
    }

    // --- non-literal indexing: postfix `[ … ]` ---
    if text == "[" {
        let postfix = k > 0 && {
            let p = s.text(k - 1);
            (s.kind(k - 1) == Kind::Ident && !KEYWORDS.contains(&p)) || p == ")" || p == "]"
        };
        if postfix && !s.skip[k.saturating_sub(1)] {
            if let Some(close) = s.partner[k] {
                let inner: Vec<usize> = (k + 1..close).collect();
                if !inner.is_empty() {
                    let all_literal = inner.iter().all(|&i| {
                        matches!(s.kind(i), Kind::Int) || s.text(i) == ".." || s.text(i) == "..="
                    });
                    let idents: Vec<&str> = inner
                        .iter()
                        .filter(|&&i| s.kind(i) == Kind::Ident)
                        .map(|&i| s.text(i))
                        .collect();
                    let bounded = idents.iter().any(|id| b.range_vars.iter().any(|v| v == id));
                    if !all_literal && !idents.is_empty() && !bounded {
                        let recv = if s.kind(k - 1) == Kind::Ident { s.text(k - 1) } else { "…" };
                        let mut expr = String::new();
                        for &i in inner.iter().take(8) {
                            let t = s.text(i);
                            // Readable spacing: tight around `.`/parens,
                            // spaced around operators.
                            let tight = matches!(t, "." | "(" | ")" | "::" | ",")
                                || expr.ends_with(['.', '('])
                                || expr.ends_with("::");
                            if !expr.is_empty() && !tight {
                                expr.push(' ');
                            }
                            expr.push_str(t);
                        }
                        b.def.panics.push(PanicSite {
                            kind: PanicKind::Index,
                            what: format!("`{recv}[{expr}]`"),
                            line,
                        });
                    }
                }
            }
        }
    }
}

/// Count a call's arguments and, for `parallel_*` callees, register the
/// closure argument as a pseudo-function region.
fn call_arity(
    s: &Stream,
    open: usize,
    pending: &mut Vec<(usize, usize, Vec<String>, String, u32, bool)>,
    b: &Builder,
    callee: &str,
    _krate: &str,
) -> usize {
    let close = match s.partner[open] {
        Some(c) => c,
        None => return 0,
    };
    let mut count = 0usize;
    let mut any = false;
    let mut depth = (0i32, 0i32, 0i32); // paren, bracket, brace
    let mut in_closure_params = false;
    for k in open + 1..close {
        match s.text(k) {
            "(" => depth.0 += 1,
            ")" => depth.0 -= 1,
            "[" => depth.1 += 1,
            "]" => depth.1 -= 1,
            "{" => depth.2 += 1,
            "}" => depth.2 -= 1,
            "|" if depth == (0, 0, 0) => in_closure_params = !in_closure_params,
            "," if depth == (0, 0, 0) && !in_closure_params => {
                count += 1;
                continue;
            }
            _ => {}
        }
        any = true;
    }
    let arity = if any { count + 1 } else { 0 };

    if PARALLEL_FNS.contains(&callee) {
        if let Some(region) = closure_region(s, open, close) {
            let (start, end, params) = region;
            pending.push((start, end, params, b.def.qual.clone(), s.line(start), s.in_test(start)));
        }
    }
    arity
}

/// Locate the closure argument inside a `parallel_*` call's parens:
/// returns `(body_start_k, body_end_k_inclusive, param_names)`.
fn closure_region(s: &Stream, open: usize, close: usize) -> Option<(usize, usize, Vec<String>)> {
    let mut depth = 0i32;
    let mut k = open + 1;
    let mut params_open = None;
    while k < close {
        match s.text(k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "|" if depth == 0 => {
                params_open = Some(k);
                break;
            }
            _ => {}
        }
        k += 1;
    }
    let popen = params_open?;
    let mut pclose = popen + 1;
    while pclose < close && s.text(pclose) != "|" {
        pclose += 1;
    }
    if pclose >= close {
        return None;
    }
    let params: Vec<String> = (popen + 1..pclose)
        .filter(|&i| s.kind(i) == Kind::Ident && s.text(i) != "mut" && s.text(i) != "_")
        .map(|i| s.text(i).to_string())
        .collect();
    let body_start = pclose + 1;
    if body_start >= close {
        return None;
    }
    if s.text(body_start) == "{" {
        let end = s.partner[body_start]?;
        Some((body_start, end, params))
    } else {
        // Expression body: runs to the call's close paren or a top-level comma.
        let mut depth = 0i32;
        let mut k = body_start;
        while k < close {
            match s.text(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => return Some((body_start, k - 1, params)),
                _ => {}
            }
            k += 1;
        }
        Some((body_start, close - 1, params))
    }
}

/// Lock class: the receiver field/binding immediately before `.lock()`,
/// crate-qualified. `self.shards[i].lock()` → `<crate>::shards`.
fn lock_class(s: &Stream, lock_k: usize, krate: &str) -> String {
    // lock_k is the `lock` ident; lock_k-1 is `.`.
    let mut j = lock_k.checked_sub(2);
    // Skip an index group: `shards[i].lock()`.
    if let Some(i) = j {
        if s.text(i) == "]" {
            j = s.partner[i].and_then(|o| o.checked_sub(1));
        } else if s.text(i) == ")" {
            // `self.shard(x).lock()` — use the method name.
            j = s.partner[i].and_then(|o| o.checked_sub(1));
        }
    }
    match j {
        Some(i) if s.kind(i) == Kind::Ident => format!("{krate}::{}", s.text(i)),
        _ => format!("{krate}::<expr>"),
    }
}

/// Approximate the filtered-token position at which a guard obtained at
/// `lock_k` dies. See [`LockSite::scope_end_k`].
fn guard_scope_end(s: &Stream, lock_k: usize, stmt_start: usize, open_braces: &[usize]) -> usize {
    // Consume only the poison adapters after `lock()` (`.unwrap()`,
    // `.expect(…)`, `.unwrap_or_else(…)`). A chain that continues past
    // them (`.lock().unwrap().pop_front()`) binds the *result*, not the
    // guard — the guard is a temporary that dies at the statement end.
    let mut k = match s.partner.get(lock_k + 1).copied().flatten() {
        Some(close) => close + 1,
        None => return s.len(),
    };
    while k + 2 < s.len()
        && s.text(k) == "."
        && matches!(s.text(k + 1), "unwrap" | "expect" | "unwrap_or_else")
        && s.is(k + 2, "(")
    {
        match s.partner[k + 2] {
            Some(c) => k = c + 1,
            None => break,
        }
    }
    let chain_continues =
        k + 2 < s.len() && s.text(k) == "." && s.kind(k + 1) == Kind::Ident && s.is(k + 2, "(");
    let stmt_kw = s.text(stmt_start);
    let chain_ends_stmt = s.is(k, ";");
    if chain_ends_stmt && !chain_continues && stmt_kw == "let" {
        // `let guard = x.lock()…;` — guard lives to the end of the block.
        return match open_braces.last().and_then(|&o| s.partner[o]) {
            Some(close) => close,
            None => s.len(),
        };
    }
    if (stmt_kw == "if" || stmt_kw == "while") && s.is(stmt_start + 1, "let") {
        // `if let Ok(g) = x.lock() { … }` — guard lives for the body.
        let mut j = k;
        let mut paren = 0i32;
        while j < s.len() {
            match s.text(j) {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren == 0 => {
                    return s.partner[j].unwrap_or(s.len());
                }
                ";" if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
    }
    // Temporary guard: dead at the end of the statement.
    let mut j = k;
    let mut depth = 0i32;
    while j < s.len() {
        match s.text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" if depth == 0 => return j,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    s.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn syms(path: &str, src: &str) -> FileSymbols {
        let mut toks = lexer::lex(src);
        lexer::mark_test_regions(&mut toks);
        extract(path, &toks)
    }

    #[test]
    fn extracts_impl_methods_with_qual_and_arity() {
        let f = syms(
            "crates/serve/src/a.rs",
            "impl ServeEngine { pub fn serve(&self, reqs: &[Req]) -> Vec<R> { helper(reqs, 3) } }\n\
             fn helper(r: &[Req], k: usize) -> Vec<R> { Vec::new() }",
        );
        assert_eq!(f.fns.len(), 2, "{:#?}", f.fns);
        let serve = &f.fns[0];
        assert_eq!(serve.qual, "ServeEngine::serve");
        assert_eq!(serve.arity, 1);
        assert!(serve.has_self);
        assert_eq!(serve.calls.len(), 1);
        assert_eq!(serve.calls[0].name, "helper");
        assert_eq!(serve.calls[0].arity, 2);
        let helper = &f.fns[1];
        assert_eq!(helper.qual, "helper");
        assert_eq!(helper.arity, 2);
        assert!(!helper.has_self);
    }

    #[test]
    fn trait_for_impl_quals_by_type_not_trait() {
        let f = syms(
            "crates/models/src/a.rs",
            "impl ScoreModel for SasRec { fn score(&self, u: usize) -> f32 { 0.0 } }",
        );
        assert_eq!(f.fns[0].qual, "SasRec::score");
    }

    #[test]
    fn records_panic_sites_and_kinds() {
        let f = syms(
            "crates/serve/src/a.rs",
            "fn f(x: Option<u32>) { x.unwrap(); y.expect(\"msg\"); panic!(\"no\"); }",
        );
        let kinds: Vec<PanicKind> = f.fns[0].panics.iter().map(|p| p.kind).collect();
        assert_eq!(kinds, vec![PanicKind::Unwrap, PanicKind::Expect, PanicKind::Macro]);
    }

    #[test]
    fn range_loop_indexing_is_exempt_but_free_indexing_is_not() {
        let f = syms(
            "crates/serve/src/a.rs",
            "fn f(row: &[f32], j: usize) -> f32 {\n\
                 let mut acc = 0.0;\n\
                 for i in 0..row.len() { acc += row[i]; }\n\
                 acc + row[j]\n\
             }",
        );
        let panics = &f.fns[0].panics;
        assert_eq!(panics.len(), 1, "{panics:?}");
        assert_eq!(panics[0].kind, PanicKind::Index);
        assert!(panics[0].what.contains("row [ j ]") || panics[0].what.contains("row[j]")
            || panics[0].what.contains("`row[j"), "{:?}", panics[0].what);
    }

    #[test]
    fn literal_index_is_exempt() {
        let f = syms("crates/serve/src/a.rs", "fn f(r: &[f32]) -> f32 { r[0] + r[1] }");
        assert!(f.fns[0].panics.is_empty(), "{:?}", f.fns[0].panics);
    }

    #[test]
    fn parallel_closure_becomes_pseudo_fn_with_exempt_params() {
        let f = syms(
            "crates/serve/src/a.rs",
            "fn spread(n: usize, out: &mut [f32]) {\n\
                 parallel_for(n, 1, |i| { out[i] = work(i); });\n\
             }",
        );
        assert_eq!(f.fns.len(), 2, "{:#?}", f.fns);
        let closure = f.fns.iter().find(|d| d.is_closure_root).expect("closure pseudo-fn");
        assert!(closure.qual.starts_with("spread::{closure@"), "{}", closure.qual);
        // `out[i]` indexing by the closure param is exempt.
        assert!(closure.panics.is_empty(), "{:?}", closure.panics);
        assert_eq!(closure.calls.len(), 1);
        assert_eq!(closure.calls[0].name, "work");
        // The parent records the parallel_for call but not the closure's body.
        let parent = f.fns.iter().find(|d| !d.is_closure_root).expect("parent");
        assert!(parent.calls.iter().any(|c| c.name == "parallel_for"));
        assert!(parent.calls.iter().all(|c| c.name != "work"));
    }

    #[test]
    fn alloc_in_loop_recorded_outside_loop_not() {
        let f = syms(
            "crates/serve/src/a.rs",
            "fn f(n: usize) {\n\
                 let hoisted = Vec::with_capacity(n);\n\
                 for i in 0..n { let s = format!(\"x{i}\"); use_it(s); }\n\
             }",
        );
        let allocs = &f.fns[0].allocs;
        assert_eq!(allocs.len(), 1, "{allocs:?}");
        assert_eq!(allocs[0].what, "format!");
    }

    #[test]
    fn lock_class_and_let_guard_scope() {
        let f = syms(
            "crates/obs/src/a.rs",
            "impl Registry { fn get(&self) {\n\
                 let shard = self.shards[0].lock().unwrap();\n\
                 other.inner.lock().unwrap().push(1);\n\
             } }",
        );
        let locks = &f.fns[0].locks;
        assert_eq!(locks.len(), 2, "{locks:?}");
        assert_eq!(locks[0].class, "obs::shards");
        assert_eq!(locks[1].class, "obs::inner");
        // The let-bound guard spans past the temporary's statement.
        assert!(locks[0].scope_end_k > locks[1].k, "{locks:?}");
        // The temporary guard dies at its own statement end.
        assert!(locks[1].scope_end_k < locks[0].scope_end_k, "{locks:?}");
    }

    #[test]
    fn test_fns_are_marked() {
        let f = syms(
            "crates/serve/src/a.rs",
            "#[cfg(test)]\nmod tests { #[test]\nfn t() { x.unwrap(); } }",
        );
        assert!(f.fns[0].is_test);
    }

    #[test]
    fn path_call_records_receiver_type() {
        let f = syms(
            "crates/serve/src/a.rs",
            "fn f() { let t = TopK::new(5); wr_eval::merge_top_k(3, &parts); }",
        );
        let calls = &f.fns[0].calls;
        assert_eq!(calls[0].recv.as_deref(), Some("TopK"));
        assert_eq!(calls[0].arity, 1);
        assert_eq!(calls[1].name, "merge_top_k");
        assert_eq!(calls[1].arity, 2);
    }
}
