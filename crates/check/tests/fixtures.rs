//! Fixture suite for the wr-check rule set: every rule fires on a minimal
//! offending source, and every rule is silenced by a justified allow
//! directive. The fixtures live in raw strings so this file itself stays
//! clean under the workspace scan (rule patterns inside string literals
//! are data, not code).

use wr_check::{check_source, Rule, Violation};

/// Violations that survive suppression, restricted to one rule.
fn active(path: &str, src: &str, rule: Rule) -> Vec<Violation> {
    check_source(path, src)
        .into_iter()
        .filter(|v| v.rule == rule && v.suppressed.is_none())
        .collect()
}

/// Violations of `rule` that a directive suppressed.
fn suppressed(path: &str, src: &str, rule: Rule) -> Vec<Violation> {
    check_source(path, src)
        .into_iter()
        .filter(|v| v.rule == rule && v.suppressed.is_some())
        .collect()
}

// ---------------------------------------------------------------- R1

#[test]
fn r1_fires_on_unwrap_expect_and_panic_in_kernel_code() {
    let src = r#"
pub fn f(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("present");
    if a == 0 { panic!("zero"); }
    if b == 1 { todo!() }
    a + b
}
"#;
    let hits = active("crates/tensor/src/fixture.rs", src, Rule::NoPanic);
    assert_eq!(hits.len(), 4, "{hits:?}");
    assert_eq!(
        hits.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![3, 4, 5, 6]
    );
}

#[test]
fn r1_suppressed_by_directive() {
    let src = r#"
pub fn f(v: Option<u32>) -> u32 {
    // wr-check: allow(R1) — fixture invariant: caller always passes Some.
    v.unwrap()
}
"#;
    assert!(active("crates/tensor/src/fixture.rs", src, Rule::NoPanic).is_empty());
    assert_eq!(suppressed("crates/tensor/src/fixture.rs", src, Rule::NoPanic).len(), 1);
}

#[test]
fn r1_scoped_to_kernel_crates_and_production_code() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    // Non-kernel crate: out of scope.
    assert!(active("crates/bench/src/fixture.rs", src, Rule::NoPanic).is_empty());
    // Kernel crate, but under tests/: out of scope.
    assert!(active("crates/tensor/tests/fixture.rs", src, Rule::NoPanic).is_empty());
    // Kernel crate, inside a #[cfg(test)] module: out of scope.
    let in_test = "#[cfg(test)]\nmod tests {\n    fn f(v: Option<u32>) -> u32 { v.unwrap() }\n}\n";
    assert!(active("crates/tensor/src/fixture.rs", in_test, Rule::NoPanic).is_empty());
}

// ---------------------------------------------------------------- R2

#[test]
fn r2_fires_on_unsafe_without_safety_comment() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let hits = active("crates/runtime/src/fixture.rs", src, Rule::SafetyComment);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 3);
}

#[test]
fn r2_satisfied_by_safety_comment() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}
"#;
    assert!(check_source("crates/runtime/src/fixture.rs", src)
        .iter()
        .all(|v| v.rule != Rule::SafetyComment));
}

#[test]
fn r2_suppressed_by_directive() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    // wr-check: allow(R2) — fixture: justification lives on the caller side.
    unsafe { *p }
}
"#;
    assert!(active("crates/runtime/src/fixture.rs", src, Rule::SafetyComment).is_empty());
    assert_eq!(
        suppressed("crates/runtime/src/fixture.rs", src, Rule::SafetyComment).len(),
        1
    );
}

// ---------------------------------------------------------------- R3

#[test]
fn r3_fires_on_spawn_and_static_mut_outside_runtime() {
    let src = r#"
static mut COUNTER: u32 = 0;
pub fn f() {
    std::thread::spawn(|| {});
}
"#;
    let hits = active("crates/tensor/src/fixture.rs", src, Rule::PoolOnlyParallelism);
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert_eq!(hits.iter().map(|v| v.line).collect::<Vec<_>>(), vec![2, 4]);
}

#[test]
fn r3_allowed_inside_runtime_crate() {
    let src = "pub fn f() { std::thread::spawn(|| {}); }\n";
    assert!(active("crates/runtime/src/fixture.rs", src, Rule::PoolOnlyParallelism).is_empty());
}

#[test]
fn r3_suppressed_by_directive() {
    let src = r#"
pub fn f() {
    // wr-check: allow(R3) — fixture: one-shot helper thread in a probe tool.
    std::thread::spawn(|| {});
}
"#;
    assert!(active("crates/models/src/fixture.rs", src, Rule::PoolOnlyParallelism).is_empty());
    assert_eq!(
        suppressed("crates/models/src/fixture.rs", src, Rule::PoolOnlyParallelism).len(),
        1
    );
}

// ---------------------------------------------------------------- R4

#[test]
fn r4_fires_on_wall_clock_and_hash_collections() {
    let src = r#"
use std::collections::HashMap;
use std::time::Instant;
pub fn f() -> u64 {
    let m: HashMap<u32, u32> = HashMap::new();
    let t = Instant::now();
    let s = std::time::SystemTime::now();
    let _ = (m, t, s);
    0
}
"#;
    let hits = active("crates/models/src/fixture.rs", src, Rule::Determinism);
    // HashMap reported once per file (first sighting), each clock source once.
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert_eq!(hits.iter().map(|v| v.line).collect::<Vec<_>>(), vec![2, 6, 7]);
}

#[test]
fn r4_exempt_in_bench_crate() {
    let src = "pub fn f() { let _ = std::time::Instant::now(); }\n";
    assert!(active("crates/bench/src/fixture.rs", src, Rule::Determinism).is_empty());
}

#[test]
fn r4_clock_exempt_in_obs_but_hash_is_not() {
    // crates/obs hosts the one production wall-clock read (MonotonicClock
    // behind the Clock trait) — Instant::now is legal there...
    let clock = "pub fn f() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }\n";
    assert!(active("crates/obs/src/clock.rs", clock, Rule::Determinism).is_empty());
    // ...but the same line in any result-producing crate still fires, with
    // a message pointing at the sanctioned route.
    let hits = active("crates/serve/src/fixture.rs", clock, Rule::Determinism);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("wr_obs::Clock"), "{hits:?}");
    // The hash-collection half of R4 has no obs exemption: registries and
    // tracers must iterate deterministically for stable snapshots.
    let hash = "pub fn f() { let m: std::collections::HashMap<u32, u32> = Default::default(); let _ = m; }\n";
    assert_eq!(active("crates/obs/src/registry.rs", hash, Rule::Determinism).len(), 1);
}

#[test]
fn r4_suppressed_by_directive() {
    let src = r#"
pub fn f() {
    // wr-check: allow(R4) — fixture: wall-clock feeds a log line only.
    let _ = std::time::Instant::now();
}
"#;
    assert!(active("crates/train/src/fixture.rs", src, Rule::Determinism).is_empty());
    assert_eq!(suppressed("crates/train/src/fixture.rs", src, Rule::Determinism).len(), 1);
}

// ---------------------------------------------------------------- R5

#[test]
fn r5_fires_on_direct_float_equality() {
    let src = r#"
pub fn f(x: f32) -> bool {
    x == 0.5 || x != 1.0e3 || x == -2.5
}
"#;
    let hits = active("crates/whitening/src/fixture.rs", src, Rule::FloatEq);
    assert_eq!(hits.len(), 3, "{hits:?}");
}

#[test]
fn r5_ignores_integer_equality() {
    let src = "pub fn f(x: u32) -> bool { x == 0 || x != 10 }\n";
    assert!(active("crates/whitening/src/fixture.rs", src, Rule::FloatEq).is_empty());
}

#[test]
fn r5_suppressed_by_directive() {
    let src = r#"
pub fn f(x: f32) -> bool {
    // wr-check: allow(R5) — fixture: exact sentinel comparison by design.
    x == 1.0
}
"#;
    assert!(active("crates/whitening/src/fixture.rs", src, Rule::FloatEq).is_empty());
    assert_eq!(suppressed("crates/whitening/src/fixture.rs", src, Rule::FloatEq).len(), 1);
}

// ------------------------------------------------------- directives (D0)

#[test]
fn directive_without_reason_is_its_own_violation() {
    let src = r#"
pub fn f(v: Option<u32>) -> u32 {
    // wr-check: allow(R1)
    v.unwrap()
}
"#;
    let vs = check_source("crates/tensor/src/fixture.rs", src);
    // The malformed directive is flagged AND the unwrap still counts.
    assert!(vs.iter().any(|v| v.rule == Rule::Directive && v.suppressed.is_none()));
    assert!(vs
        .iter()
        .any(|v| v.rule == Rule::NoPanic && v.suppressed.is_none()));
}

#[test]
fn directive_accepts_slugs_and_rule_lists() {
    let src = r#"
pub fn f(v: Option<f32>) -> bool {
    // wr-check: allow(no-panic, float-eq) — fixture: both justified at once.
    v.unwrap() == 1.0
}
"#;
    let vs = check_source("crates/tensor/src/fixture.rs", src);
    assert!(vs.iter().all(|v| v.suppressed.is_some()), "{vs:?}");
    assert_eq!(vs.len(), 2);
}

#[test]
fn trailing_directive_governs_its_own_line() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // wr-check: allow(R1) — fixture: trailing form.\n}\n";
    assert!(active("crates/tensor/src/fixture.rs", src, Rule::NoPanic).is_empty());
}

// ------------------------------------------------- tokenizer edge cases

#[test]
fn patterns_inside_strings_and_comments_do_not_fire() {
    let src = r##"
pub fn f() -> String {
    // this comment mentions v.unwrap() and thread::spawn and 1.0 == 2.0
    /* and so does this block: panic!("x") */
    let s = "v.unwrap(); thread::spawn; Instant::now(); 1.0 == 2.0";
    let r = r#"static mut INSIDE_RAW: u32 = unsafe { 0 };"#;
    format!("{s}{r}")
}
"##;
    let vs = check_source("crates/tensor/src/fixture.rs", src);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn char_literals_and_lifetimes_do_not_confuse_the_lexer() {
    let src = r#"
pub fn f<'a>(s: &'a str) -> bool {
    s.starts_with('"') || s.ends_with('\\')
}
"#;
    let vs = check_source("crates/tensor/src/fixture.rs", src);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn range_and_method_call_integers_are_not_floats() {
    // `0..n` and `1.max(2)` must lex as integers, or R5 would misfire on
    // the comparisons below.
    let src = r#"
pub fn f(n: usize) -> bool {
    let mut acc = 0usize;
    for i in 0..n { acc += i; }
    acc == 1.max(2) && acc != n
}
"#;
    let vs = check_source("crates/whitening/src/fixture.rs", src);
    assert!(vs.is_empty(), "{vs:?}");
}

// ------------------------------------------------- end-to-end exit codes

/// Run the wr-check binary against a throwaway tree and return
/// (exit-success, stdout).
fn run_binary(root: &std::path::Path, extra: &[&str]) -> (bool, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_wr-check"))
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn wr-check");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn binary_exits_nonzero_only_when_a_violation_is_injected() {
    let dir = std::env::temp_dir().join(format!("wr-check-fixture-{}", std::process::id()));
    let src_dir = dir.join("crates/tensor/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture tree");

    // Clean tree: exit 0.
    std::fs::write(src_dir.join("lib.rs"), "pub fn ok() -> u32 { 1 }\n").expect("write");
    let (ok, stdout) = run_binary(&dir, &[]);
    assert!(ok, "clean tree must pass:\n{stdout}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");

    // Inject a violation: exit non-zero, diagnostic names file and line.
    std::fs::write(
        src_dir.join("bad.rs"),
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    )
    .expect("write");
    let (ok, stdout) = run_binary(&dir, &[]);
    assert!(!ok, "injected violation must fail the scan:\n{stdout}");
    assert!(stdout.contains("crates/tensor/src/bad.rs:2"), "{stdout}");

    // JSON mode carries the same verdict.
    let (ok, stdout) = run_binary(&dir, &["--json"]);
    assert!(!ok);
    assert!(stdout.contains("\"wr-check/v2\""), "{stdout}");
    assert!(stdout.contains("\"R1\""), "{stdout}");

    // Suppress it with a justified directive: exit 0 again.
    std::fs::write(
        src_dir.join("bad.rs"),
        "pub fn f(v: Option<u32>) -> u32 {\n    // wr-check: allow(R1) — fixture: injected then justified.\n    v.unwrap()\n}\n",
    )
    .expect("write");
    let (ok, stdout) = run_binary(&dir, &[]);
    assert!(ok, "suppressed violation must pass:\n{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_reports_r6_chain_from_serve_root() {
    // Acceptance fixture: a panic two calls deep from ServeEngine::serve
    // must surface with the full call chain in the diagnostic.
    let dir = std::env::temp_dir().join(format!("wr-check-r6-{}", std::process::id()));
    let src_dir = dir.join("crates/serve/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture tree");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub struct ServeEngine;\n\
         impl ServeEngine {\n\
             pub fn serve(&self) { plan_batches(); }\n\
         }\n\
         fn plan_batches() { score_rows(); }\n\
         fn score_rows() { let v: Option<u32> = None; v.unwrap(); }\n",
    )
    .expect("write");
    let (ok, stdout) = run_binary(&dir, &[]);
    assert!(!ok, "reachable panic must fail the scan:\n{stdout}");
    assert!(stdout.contains("[R6 panic-reachability]"), "{stdout}");
    assert!(
        stdout.contains("ServeEngine::serve → plan_batches → score_rows"),
        "diagnostic must carry the full chain:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ratchet_gates_on_baseline_and_writer_refuses_to_loosen() {
    let dir = std::env::temp_dir().join(format!("wr-check-ratchet-{}", std::process::id()));
    let src_dir = dir.join("crates/tensor/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture tree");
    let suppressed_fn = "pub fn f(v: Option<u32>) -> u32 {\n    \
         // wr-check: allow(R1) — fixture: justified legacy call.\n    v.unwrap()\n}\n";
    std::fs::write(src_dir.join("lib.rs"), suppressed_fn).expect("write");

    // No baseline yet: --ratchet fails and points at --write-baseline.
    let (ok, _) = run_binary(&dir, &["--ratchet"]);
    assert!(!ok, "ratchet without a baseline must fail");

    // Write the baseline from the clean-but-suppressed tree, then gate.
    let (ok, stdout) = run_binary(&dir, &["--write-baseline"]);
    assert!(ok, "write-baseline must succeed on a clean tree:\n{stdout}");
    let baseline = std::fs::read_to_string(dir.join("check_baseline.json")).expect("baseline");
    assert!(baseline.contains("wr-check-baseline/v1"), "{baseline}");
    let (ok, stdout) = run_binary(&dir, &["--ratchet"]);
    assert!(ok, "ratchet must pass at the recorded budget:\n{stdout}");

    // A second suppression exceeds the budget: ratchet fails, and the
    // writer refuses to loosen the committed counts.
    std::fs::write(
        src_dir.join("more.rs"),
        "pub fn g(v: Option<u32>) -> u32 {\n    \
         // wr-check: allow(R1) — fixture: a second justified call.\n    v.unwrap()\n}\n",
    )
    .expect("write");
    let (ok, _) = run_binary(&dir, &["--ratchet"]);
    assert!(!ok, "suppression growth must fail the ratchet");
    let (ok, _) = run_binary(&dir, &["--write-baseline"]);
    assert!(!ok, "write-baseline must refuse to raise a count");

    // Removing all suppressions shrinks the budget: writer accepts.
    std::fs::remove_file(src_dir.join("more.rs")).expect("rm");
    std::fs::write(src_dir.join("lib.rs"), "pub fn f() -> u32 { 1 }\n").expect("write");
    let (ok, _) = run_binary(&dir, &["--write-baseline"]);
    assert!(ok, "shrinking the budget must be allowed");
    let (ok, _) = run_binary(&dir, &["--ratchet"]);
    assert!(ok, "ratchet must pass at the shrunk budget");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_prints_rationale_for_ids_and_slugs() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_wr-check"))
        .args(["--explain", "R6"])
        .output()
        .expect("spawn wr-check");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("panic-reachability"), "{text}");
    assert!(text.contains("ServeEngine::serve"), "{text}");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_wr-check"))
        .args(["--explain", "lock-order"])
        .output()
        .expect("spawn wr-check");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("R7"));

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_wr-check"))
        .args(["--explain", "R99"])
        .output()
        .expect("spawn wr-check");
    assert!(!out.status.success(), "unknown rule must exit non-zero");
}
