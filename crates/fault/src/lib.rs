//! # wr-fault — deterministic fault injection for the WhitenRec stack.
//!
//! The paper's whole pipeline hinges on one frozen whitened table computed
//! once and reused at serving time, so a torn checkpoint or a silently
//! NaN-poisoned embedding row is the worst failure mode this workspace
//! can have. This crate turns those failures into *deterministic,
//! replayable test inputs* instead of hopes:
//!
//! * [`FaultInjector`] — the hook trait the hardened paths accept
//!   (`wr_nn::save_params_with`, the `wr_data` writers, the
//!   `wr_serve::ServeEngine` scoring loop). [`NoFaults`] is the free
//!   production default.
//! * [`FaultPlan`] — a seeded schedule (xoshiro-style SplitMix64 mixing,
//!   `WR_FAULT_SEED`) that injects I/O errors, byte truncations, single
//!   bit-flips, NaN poisoning, and induced batch panics. Every decision is
//!   a **pure function of `(seed, site, index)`** — never of wall-clock
//!   time, thread interleaving, or call order — so the same seed replays
//!   the same faults regardless of batch composition or `WR_THREADS`.
//! * [`atomic_io`] — crash-safe persistence: `write_atomic` (write temp →
//!   fsync → rename → fsync dir) and the workspace's one [`crc32`]
//!   implementation, used by the checkpoint/dataset integrity footers.
//! * [`backoff`] — [`RetryPolicy`] (bounded exponential backoff) and the
//!   [`Sleeper`] trait so tests drive retries without ever sleeping.
//!
//! **Layering.** Zero dependencies; sits at the very bottom of the
//! workspace next to `wr-obs` so every persistence and serving crate can
//! accept an injector without cycles. The crate never reads the clock
//! (wr-check R4) and its only panics are the *deliberate* ones scheduled
//! by a plan ([`FaultPlan::maybe_panic`]), which callers contain with
//! `catch_unwind` at micro-batch boundaries.

pub mod atomic_io;
pub mod backoff;
pub mod faultlog;
mod plan;

pub use atomic_io::{
    crc32, seal_lines, verify_lines, write_atomic, write_atomic_with, CRC_LINE_PREFIX,
};
pub use backoff::{NoSleep, RetryPolicy, Sleeper, ThreadSleeper};
pub use faultlog::{
    counts_by_kind, load_fault_log, parse_fault_log, render_fault_log, save_fault_log, FaultLog,
    FAULTLOG_FORMAT,
};
pub use plan::{
    Corruption, FaultKind, FaultPlan, FaultRates, FaultRecord, InducedPanic, WR_FAULT_SEED_ENV,
};

use std::sync::Arc;

/// Injection hooks the hardened paths consult. All methods are no-ops in
/// production ([`NoFaults`]); [`FaultPlan`] implements them from a seeded
/// schedule. Implementations must be deterministic in `(site, index)` —
/// the recovery tests replay schedules and assert identical outcomes.
pub trait FaultInjector: Send + Sync {
    /// An I/O error to surface *instead of* performing the write at
    /// `site`/`index`, or `None` to proceed.
    fn write_error(&self, site: &str, index: u64) -> Option<std::io::Error>;

    /// Corrupt an outgoing byte buffer in place (truncation or a single
    /// bit-flip). Returns what was done, `None` when the bytes were left
    /// intact.
    fn corrupt(&self, site: &str, index: u64, bytes: &mut Vec<u8>) -> Option<Corruption>;

    /// NaN-poison an `f32` buffer in place; returns how many values were
    /// poisoned (0 = untouched).
    fn poison(&self, site: &str, index: u64, data: &mut [f32]) -> usize;

    /// Deliberately panics (with an [`InducedPanic`] payload) when the
    /// schedule has a panic for `(site, index)` that is still live at this
    /// retry `attempt`. Callers contain it with `std::panic::catch_unwind`.
    fn maybe_panic(&self, site: &str, index: u64, attempt: u32);
}

/// The production injector: injects nothing, costs nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn write_error(&self, _site: &str, _index: u64) -> Option<std::io::Error> {
        None
    }

    fn corrupt(&self, _site: &str, _index: u64, _bytes: &mut Vec<u8>) -> Option<Corruption> {
        None
    }

    fn poison(&self, _site: &str, _index: u64, _data: &mut [f32]) -> usize {
        0
    }

    fn maybe_panic(&self, _site: &str, _index: u64, _attempt: u32) {}
}

/// An injector that *permanently* panics one site from a chosen index on
/// — the "replica process died" failure mode, as opposed to
/// [`FaultPlan`]'s probabilistic mix of transient and permanent faults.
///
/// `maybe_panic(site, index, _)` panics (with an [`InducedPanic`]
/// payload) for every `index >= from_index` at the armed site, on *every*
/// attempt: retry can never recover, which is exactly what a health
/// breaker must learn to route around. All other hooks are no-ops — a
/// dead replica never poisons scores, it just stops answering — so a
/// gateway that fails over to a healthy replica keeps its answers
/// bit-identical to a fully healthy run.
#[derive(Debug, Clone)]
pub struct KillAfter {
    site: String,
    from_index: u64,
}

impl KillAfter {
    /// Kill every `site` call with `index >= from_index`.
    pub fn new(site: impl Into<String>, from_index: u64) -> Self {
        KillAfter {
            site: site.into(),
            from_index,
        }
    }

    /// Kill every `serve.row` call — a replica that is dead from the
    /// first request it sees.
    pub fn serve_rows() -> Self {
        KillAfter::new("serve.row", 0)
    }

    /// Whether this injector panics for `(site, index)` (pure query, any
    /// attempt — the kill is permanent).
    pub fn would_panic(&self, site: &str, index: u64) -> bool {
        site == self.site && index >= self.from_index
    }
}

impl FaultInjector for KillAfter {
    fn write_error(&self, _site: &str, _index: u64) -> Option<std::io::Error> {
        None
    }

    fn corrupt(&self, _site: &str, _index: u64, _bytes: &mut Vec<u8>) -> Option<Corruption> {
        None
    }

    fn poison(&self, _site: &str, _index: u64, _data: &mut [f32]) -> usize {
        0
    }

    fn maybe_panic(&self, site: &str, index: u64, attempt: u32) {
        if self.would_panic(site, index) {
            std::panic::panic_any(InducedPanic {
                site: site.to_string(),
                index,
                attempt,
            });
        }
    }
}

/// Shared injector handle, the form the hardened constructors take.
pub type SharedInjector = Arc<dyn FaultInjector>;

/// A [`NoFaults`] behind an `Arc`, for default fields.
pub fn no_faults() -> SharedInjector {
    Arc::new(NoFaults)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_after_is_permanent_and_site_scoped() {
        let kill = KillAfter::new("serve.row", 10);
        // Below the threshold and at other sites: inert.
        kill.maybe_panic("serve.row", 9, 0);
        kill.maybe_panic("serve.score", 10, 0);
        assert!(!kill.would_panic("serve.row", 9));
        assert!(kill.would_panic("serve.row", 10));
        // At and past the threshold: panics on every attempt (permanent).
        for attempt in [0u32, 1, 5, u32::MAX] {
            let err = std::panic::catch_unwind(|| kill.maybe_panic("serve.row", 10, attempt))
                .expect_err("kill zone must panic");
            let payload = err.downcast::<InducedPanic>().expect("typed payload");
            assert_eq!(payload.site, "serve.row");
            assert_eq!(payload.index, 10);
        }
        // Non-panic hooks never fire: a dead replica can't poison data.
        assert!(kill.write_error("serve.row", 10).is_none());
        let mut bytes = vec![1u8];
        assert!(kill.corrupt("serve.row", 10, &mut bytes).is_none());
        let mut data = vec![1.0f32];
        assert_eq!(kill.poison("serve.row", 10, &mut data), 0);
        assert!(KillAfter::serve_rows().would_panic("serve.row", 0));
    }

    #[test]
    fn no_faults_is_inert() {
        let inj = NoFaults;
        assert!(inj.write_error("x", 0).is_none());
        let mut bytes = vec![1u8, 2, 3];
        assert!(inj.corrupt("x", 0, &mut bytes).is_none());
        assert_eq!(bytes, vec![1, 2, 3]);
        let mut data = vec![1.0f32, 2.0];
        assert_eq!(inj.poison("x", 0, &mut data), 0);
        assert!(data.iter().all(|v| v.is_finite()));
        inj.maybe_panic("x", 0, 0); // must not panic
    }
}
