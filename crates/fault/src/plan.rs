//! The seeded fault schedule.
//!
//! Every decision is derived by hashing `(seed, site, index)` through
//! SplitMix64 — the same finalizer `wr_tensor::Rng64` uses for seeding —
//! so a plan is a pure function: no interior RNG stream to race on, no
//! dependence on call order or thread count. Calling the same hook twice
//! with the same arguments gives the same answer, which is what makes
//! kill-and-replay tests meaningful.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::FaultInjector;

/// Environment variable that arms fault injection in the binaries
/// (`0`/unset = disabled).
pub const WR_FAULT_SEED_ENV: &str = "WR_FAULT_SEED";

/// What [`FaultInjector::corrupt`] did to a byte buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Buffer truncated to `keep` bytes.
    Truncated { keep: usize },
    /// One bit flipped at `byte`, bit position `bit`.
    BitFlip { byte: usize, bit: u8 },
}

/// Payload of a scheduled panic, so containment sites can tell induced
/// panics from genuine ones when reporting.
#[derive(Debug, Clone)]
pub struct InducedPanic {
    pub site: String,
    pub index: u64,
    pub attempt: u32,
}

/// Fault categories, for per-kind counters and replay logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    IoError,
    Truncation,
    BitFlip,
    NanPoison,
    Panic,
}

impl FaultKind {
    /// Every fault kind, in `slot` order — the canonical taxonomy for
    /// chaos summaries and flight-recorder event labeling. Iterate this
    /// instead of hand-listing the variants so a new kind can never be
    /// silently dropped from a report.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::IoError,
        FaultKind::Truncation,
        FaultKind::BitFlip,
        FaultKind::NanPoison,
        FaultKind::Panic,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FaultKind::IoError => "io_error",
            FaultKind::Truncation => "truncation",
            FaultKind::BitFlip => "bit_flip",
            FaultKind::NanPoison => "nan_poison",
            FaultKind::Panic => "panic",
        }
    }

    fn slot(self) -> usize {
        match self {
            FaultKind::IoError => 0,
            FaultKind::Truncation => 1,
            FaultKind::BitFlip => 2,
            FaultKind::NanPoison => 3,
            FaultKind::Panic => 4,
        }
    }
}

/// One injected fault, recorded for replay-determinism assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    pub kind: FaultKind,
    pub site: String,
    pub index: u64,
}

/// Per-hook injection probabilities (compared with `<`, never float
/// equality). Rates are per *call*, i.e. per write for I/O hooks and per
/// row for poison/panic hooks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    pub io_error: f64,
    pub corrupt: f64,
    pub poison: f64,
    pub panic: f64,
}

impl Default for FaultRates {
    fn default() -> Self {
        // Tuned so a few-hundred-query chaos replay reliably exercises
        // every recovery path without drowning it.
        FaultRates {
            io_error: 0.05,
            corrupt: 0.10,
            poison: 0.02,
            panic: 0.02,
        }
    }
}

// Distinct salts keep the per-hook hash streams independent: whether a
// row is poisoned says nothing about whether it panics.
const SALT_IO: u64 = 0x1001;
const SALT_CORRUPT: u64 = 0x2002;
const SALT_CORRUPT_SHAPE: u64 = 0x2003;
const SALT_POISON: u64 = 0x3003;
const SALT_POISON_SHAPE: u64 = 0x3004;
const SALT_PANIC: u64 = 0x4004;
const SALT_PANIC_SHAPE: u64 = 0x4005;

/// SplitMix64 finalizer — the workspace's standard bit mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// FNV-1a over the site name, so distinct sites get distinct streams.
fn fnv(site: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in site.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// A seeded, replayable fault schedule. Cheap to share behind an `Arc`;
/// the counters and the record log use interior mutability so the hooks
/// take `&self` like every other injector.
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    by_kind: [AtomicU64; 5],
    log: Mutex<Vec<FaultRecord>>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan::with_rates(seed, FaultRates::default())
    }

    pub fn with_rates(seed: u64, rates: FaultRates) -> Self {
        FaultPlan {
            seed,
            rates,
            by_kind: Default::default(),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Read `WR_FAULT_SEED`; `0`, unset, or unparsable → `None` (faults
    /// disabled).
    pub fn from_env() -> Option<FaultPlan> {
        let seed: u64 = std::env::var(WR_FAULT_SEED_ENV).ok()?.trim().parse().ok()?;
        if seed == 0 {
            None
        } else {
            Some(FaultPlan::new(seed))
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Hash stream for `(site, index)` under a per-hook salt.
    fn mix(&self, site: &str, index: u64, salt: u64) -> u64 {
        splitmix(
            self.seed
                ^ fnv(site)
                ^ index.wrapping_mul(0x9E3779B97F4A7C15)
                ^ salt.wrapping_mul(0xD1B54A32D192ED03),
        )
    }

    /// Bernoulli draw from the top 53 bits of `h`.
    fn hit(rate: f64, h: u64) -> bool {
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
    }

    fn record(&self, kind: FaultKind, site: &str, index: u64) {
        // `slot() < by_kind.len()` by construction; checked to keep the
        // injector itself panic-free on the serving path.
        if let Some(c) = self.by_kind.get(kind.slot()) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        if let Ok(mut log) = self.log.lock() {
            log.push(FaultRecord {
                kind,
                site: site.to_string(),
                index,
            });
        }
    }

    /// Total faults injected so far (all kinds).
    pub fn injected_total(&self) -> u64 {
        self.by_kind
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Faults injected of one kind.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.by_kind[kind.slot()].load(Ordering::Relaxed)
    }

    /// Snapshot of every fault injected so far, in injection order. Two
    /// replays of the same schedule over the same workload produce equal
    /// logs — the replay-determinism assertion.
    pub fn records(&self) -> Vec<FaultRecord> {
        self.log.lock().map(|l| l.clone()).unwrap_or_default()
    }

    /// Whether the schedule poisons row `index` at `site` (query without
    /// side effects — used by tests to predict quarantine sets).
    pub fn would_poison(&self, site: &str, index: u64) -> bool {
        FaultPlan::hit(self.rates.poison, self.mix(site, index, SALT_POISON))
    }

    /// Whether the schedule panics for `(site, index)` at `attempt`
    /// (query without side effects).
    pub fn would_panic(&self, site: &str, index: u64, attempt: u32) -> bool {
        if !FaultPlan::hit(self.rates.panic, self.mix(site, index, SALT_PANIC)) {
            return false;
        }
        let shape = self.mix(site, index, SALT_PANIC_SHAPE);
        // 1 in 4 scheduled panics are permanent (fail every attempt); the
        // rest are transient and clear after 1–3 failures, so bounded
        // retry genuinely recovers them.
        let permanent = shape & 3 == 0;
        let fail_count = 1 + ((shape >> 2) % 3) as u32;
        permanent || attempt < fail_count
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rates", &self.rates)
            .field("injected_total", &self.injected_total())
            .finish()
    }
}

impl FaultInjector for FaultPlan {
    fn write_error(&self, site: &str, index: u64) -> Option<std::io::Error> {
        if FaultPlan::hit(self.rates.io_error, self.mix(site, index, SALT_IO)) {
            self.record(FaultKind::IoError, site, index);
            Some(std::io::Error::new(
                std::io::ErrorKind::Other,
                format!("injected I/O error at {site}[{index}] (seed {})", self.seed),
            ))
        } else {
            None
        }
    }

    fn corrupt(&self, site: &str, index: u64, bytes: &mut Vec<u8>) -> Option<Corruption> {
        if bytes.is_empty()
            || !FaultPlan::hit(self.rates.corrupt, self.mix(site, index, SALT_CORRUPT))
        {
            return None;
        }
        let shape = self.mix(site, index, SALT_CORRUPT_SHAPE);
        if shape & 1 == 0 {
            let keep = (shape >> 1) as usize % bytes.len();
            bytes.truncate(keep);
            self.record(FaultKind::Truncation, site, index);
            Some(Corruption::Truncated { keep })
        } else {
            let byte = (shape >> 1) as usize % bytes.len();
            let bit = ((shape >> 40) % 8) as u8;
            bytes[byte] ^= 1 << bit;
            self.record(FaultKind::BitFlip, site, index);
            Some(Corruption::BitFlip { byte, bit })
        }
    }

    fn poison(&self, site: &str, index: u64, data: &mut [f32]) -> usize {
        if data.is_empty() || !self.would_poison(site, index) {
            return 0;
        }
        let shape = self.mix(site, index, SALT_POISON_SHAPE);
        // Poison 1–3 positions of the row with NaN.
        let n = 1 + (shape % 3) as usize;
        let mut poisoned = 0usize;
        for i in 0..n {
            let pos = splitmix(shape ^ (i as u64)) as usize % data.len();
            if let Some(cell) = data.get_mut(pos) {
                *cell = f32::NAN;
                poisoned += 1;
            }
        }
        self.record(FaultKind::NanPoison, site, index);
        poisoned
    }

    fn maybe_panic(&self, site: &str, index: u64, attempt: u32) {
        if self.would_panic(site, index, attempt) {
            self.record(FaultKind::Panic, site, index);
            std::panic::panic_any(InducedPanic {
                site: site.to_string(),
                index,
                attempt,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_taxonomy_is_complete_and_slot_ordered() {
        let mut seen = std::collections::BTreeSet::new();
        for (i, kind) in FaultKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.slot(), i, "ALL must be in slot order");
            assert!(seen.insert(kind.name()), "duplicate name {}", kind.name());
        }
        assert_eq!(seen.len(), FaultKind::ALL.len());
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_site_index() {
        let a = FaultPlan::new(42);
        let b = FaultPlan::new(42);
        for i in 0..500u64 {
            assert_eq!(a.would_poison("s", i), b.would_poison("s", i));
            assert_eq!(a.would_panic("s", i, 0), b.would_panic("s", i, 0));
            let mut ba = vec![0u8; 64];
            let mut bb = vec![0u8; 64];
            assert_eq!(a.corrupt("w", i, &mut ba), b.corrupt("w", i, &mut bb));
            assert_eq!(ba, bb);
        }
        assert_eq!(a.records(), b.records());
        assert_eq!(a.injected_total(), b.injected_total());
    }

    #[test]
    fn different_seeds_differ_and_sites_are_independent() {
        let a = FaultPlan::new(1);
        let b = FaultPlan::new(2);
        let pattern_a: Vec<bool> = (0..2000).map(|i| a.would_poison("s", i)).collect();
        let pattern_b: Vec<bool> = (0..2000).map(|i| b.would_poison("s", i)).collect();
        assert_ne!(pattern_a, pattern_b);
        // Distinct sites draw from distinct streams.
        let other: Vec<bool> = (0..2000).map(|i| a.would_poison("t", i)).collect();
        assert_ne!(pattern_a, other);
    }

    #[test]
    fn rates_bound_the_empirical_frequency() {
        let plan = FaultPlan::with_rates(
            7,
            FaultRates {
                io_error: 0.5,
                corrupt: 0.0,
                poison: 0.1,
                panic: 1.0,
            },
        );
        let n = 10_000u64;
        let io_hits = (0..n).filter(|&i| plan.write_error("w", i).is_some()).count();
        assert!((3_500..6_500).contains(&io_hits), "{io_hits}");
        let poison_hits = (0..n).filter(|&i| plan.would_poison("p", i)).count();
        assert!((500..2_000).contains(&poison_hits), "{poison_hits}");
        // rate 1.0 → every index panics at attempt 0.
        assert!((0..100).all(|i| plan.would_panic("b", i, 0)));
        // corrupt rate 0 → bytes always intact.
        let mut bytes = vec![9u8; 16];
        assert!(plan.corrupt("c", 3, &mut bytes).is_none());
        assert_eq!(bytes, vec![9u8; 16]);
    }

    #[test]
    fn transient_panics_clear_within_bounded_attempts() {
        let plan = FaultPlan::with_rates(
            11,
            FaultRates {
                panic: 1.0,
                ..FaultRates::default()
            },
        );
        let mut saw_transient = false;
        let mut saw_permanent = false;
        for i in 0..200u64 {
            // fail_count ≤ 3, so attempt 4 only panics for permanent faults.
            let late = plan.would_panic("b", i, 4);
            if late {
                saw_permanent = true;
                assert!(plan.would_panic("b", i, 100), "permanent must stay down");
            } else {
                saw_transient = true;
                assert!(plan.would_panic("b", i, 0), "rate 1.0 fires at attempt 0");
            }
        }
        assert!(saw_transient && saw_permanent);
    }

    #[test]
    fn maybe_panic_carries_a_typed_payload() {
        let plan = FaultPlan::with_rates(
            3,
            FaultRates {
                panic: 1.0,
                ..FaultRates::default()
            },
        );
        let err = std::panic::catch_unwind(|| plan.maybe_panic("serve.row", 9, 0))
            .expect_err("rate 1.0 must panic");
        let payload = err.downcast::<InducedPanic>().expect("typed payload");
        assert_eq!(payload.site, "serve.row");
        assert_eq!(payload.index, 9);
        assert_eq!(plan.injected(FaultKind::Panic), 1);
    }

    #[test]
    fn poison_writes_nan_and_counts() {
        let plan = FaultPlan::with_rates(
            5,
            FaultRates {
                poison: 1.0,
                ..FaultRates::default()
            },
        );
        let mut row = vec![1.0f32; 32];
        let n = plan.poison("cache.load", 0, &mut row);
        assert!(n >= 1);
        assert_eq!(row.iter().filter(|v| v.is_nan()).count(), n);
        assert_eq!(plan.injected(FaultKind::NanPoison), 1);
        assert_eq!(plan.records().len(), 1);
    }

    #[test]
    fn from_env_respects_zero_and_absent() {
        // This test mutates the process environment; the variable is
        // cleared again before returning so parallel tests in this crate
        // (none of which read it) stay unaffected.
        std::env::remove_var(WR_FAULT_SEED_ENV);
        assert!(FaultPlan::from_env().is_none());
        std::env::set_var(WR_FAULT_SEED_ENV, "0");
        assert!(FaultPlan::from_env().is_none());
        std::env::set_var(WR_FAULT_SEED_ENV, "1234");
        let plan = FaultPlan::from_env().expect("armed");
        assert_eq!(plan.seed(), 1234);
        std::env::remove_var(WR_FAULT_SEED_ENV);
    }
}
