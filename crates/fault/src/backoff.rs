//! Bounded retry with exponential backoff, sleep-free in tests.
//!
//! [`RetryPolicy`] is pure math — `delay_ns(attempt)` is a saturating
//! exponential capped at `cap_ns` — and the actual waiting goes through
//! the [`Sleeper`] trait so test harnesses substitute a no-op (or a
//! `MockClock`-advancing adapter) and never block. This mirrors the
//! `wr_obs::Clock` split: production behavior and deterministic tests
//! share one code path.

/// Bounded exponential backoff: attempt `a` waits
/// `min(cap_ns, base_ns · factor^a)`, for at most `max_attempts` tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries of the guarded operation (1 = no retry).
    pub max_attempts: u32,
    /// Delay before the first retry, nanoseconds.
    pub base_ns: u64,
    /// Multiplier between consecutive delays.
    pub factor: u32,
    /// Upper bound on any single delay, nanoseconds.
    pub cap_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 1 ms → 4 ms → 16 ms, three tries: bounded at ~21 ms worst case
        // per guarded operation, far below a micro-batch SLA blowout.
        RetryPolicy {
            max_attempts: 3,
            base_ns: 1_000_000,
            factor: 4,
            cap_ns: 50_000_000,
        }
    }
}

impl RetryPolicy {
    /// Delay to wait *after* failed attempt number `attempt` (0-based).
    pub fn delay_ns(&self, attempt: u32) -> u64 {
        let mut delay = self.base_ns;
        for _ in 0..attempt {
            delay = delay.saturating_mul(self.factor as u64);
            if delay >= self.cap_ns {
                return self.cap_ns;
            }
        }
        delay.min(self.cap_ns)
    }

    /// Sum of every delay a fully exhausted retry loop would wait.
    pub fn worst_case_total_ns(&self) -> u64 {
        (0..self.max_attempts.saturating_sub(1))
            .fold(0u64, |acc, a| acc.saturating_add(self.delay_ns(a)))
    }
}

/// How a retry loop waits between attempts.
pub trait Sleeper: Send + Sync {
    fn sleep_ns(&self, ns: u64);
}

/// Production sleeper: parks the calling thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep_ns(&self, ns: u64) {
        if ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }
}

/// Test sleeper: returns immediately. Pair with `wr_obs::MockClock` when
/// a test wants to *observe* the waits instead of serving them.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoSleep;

impl Sleeper for NoSleep {
    fn sleep_ns(&self, _ns: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn delays_grow_exponentially_to_the_cap() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_ns: 1_000,
            factor: 10,
            cap_ns: 500_000,
        };
        assert_eq!(p.delay_ns(0), 1_000);
        assert_eq!(p.delay_ns(1), 10_000);
        assert_eq!(p.delay_ns(2), 100_000);
        assert_eq!(p.delay_ns(3), 500_000); // capped
        assert_eq!(p.delay_ns(30), 500_000); // saturates, never overflows
        assert_eq!(
            p.worst_case_total_ns(),
            1_000 + 10_000 + 100_000 + 500_000 + 500_000
        );
    }

    #[test]
    fn default_policy_is_tightly_bounded() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 3);
        assert!(p.worst_case_total_ns() < 100_000_000, "must stay under 100 ms");
    }

    #[test]
    fn sleepers_are_injectable() {
        struct Recorder(AtomicU64);
        impl Sleeper for Recorder {
            fn sleep_ns(&self, ns: u64) {
                self.0.fetch_add(ns, Ordering::Relaxed);
            }
        }
        let rec = Recorder(AtomicU64::new(0));
        let p = RetryPolicy::default();
        rec.sleep_ns(p.delay_ns(0));
        rec.sleep_ns(p.delay_ns(1));
        assert_eq!(rec.0.load(Ordering::Relaxed), 5_000_000);
        NoSleep.sleep_ns(u64::MAX); // returns immediately
    }
}
