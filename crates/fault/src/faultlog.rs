//! The `wr-faultlog/v1` artifact: a [`FaultPlan`]'s decision log as a
//! CRC-sealed, crash-safe JSONL file.
//!
//! A chaos replay is only as useful as its evidence. [`FaultPlan`] already
//! records every injected fault in order ([`FaultPlan::records`]); this
//! module seals that log to disk so a failed run's exact fault schedule
//! can be attached to a bug report and *replayed*: re-running the same
//! seed over the same workload must reproduce identical per-kind counts —
//! the determinism assertion the chaos suites pin.
//!
//! Format, line-oriented like every text artifact in the workspace:
//!
//! ```text
//! {"format":"wr-faultlog/v1","seed":20240613,"records":3}
//! {"kind":"nan_poison","site":"cache.load","index":7}
//! {"kind":"panic","site":"serve.row","index":41}
//! {"kind":"panic","site":"serve.row","index":41}
//! #crc32:9a3f00c1
//! ```
//!
//! Header first, one record per line in injection order, then the shared
//! [`crate::seal_lines`] integrity footer. Written via
//! [`crate::write_atomic`], so a crash mid-dump leaves the previous
//! generation (or nothing), never a torn log. The loader rejects CRC
//! mismatches, malformed lines, unknown kinds, and header/record-count
//! disagreement — a damaged fault log is never silently accepted.

use std::io;
use std::path::Path;

use crate::atomic_io::{seal_lines, verify_lines, write_atomic};
use crate::plan::{FaultKind, FaultRecord};

/// Format tag in the header line.
pub const FAULTLOG_FORMAT: &str = "wr-faultlog/v1";

/// A loaded fault log: the seed that produced it plus every injected
/// fault in injection order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultLog {
    pub seed: u64,
    pub records: Vec<FaultRecord>,
}

impl FaultLog {
    /// Injection counts per kind, indexed in [`FaultKind::ALL`] order —
    /// the shape the replay-determinism assertions compare.
    pub fn counts_by_kind(&self) -> [u64; FaultKind::ALL.len()] {
        counts_by_kind(&self.records)
    }
}

/// Injection counts per kind over any record slice, indexed in
/// [`FaultKind::ALL`] order.
pub fn counts_by_kind(records: &[FaultRecord]) -> [u64; FaultKind::ALL.len()] {
    let mut counts = [0u64; FaultKind::ALL.len()];
    for record in records {
        for (slot, kind) in FaultKind::ALL.into_iter().enumerate() {
            if record.kind == kind {
                counts[slot] += 1;
            }
        }
    }
    counts
}

/// JSON-escape a site name. Real sites are dotted identifiers; the escape
/// keeps a hostile or future site from breaking the line format.
fn escape(site: &str) -> String {
    let mut out = String::with_capacity(site.len());
    for c in site.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape(site: &str) -> String {
    let mut out = String::with_capacity(site.len());
    let mut chars = site.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn kind_from_name(name: &str) -> Option<FaultKind> {
    FaultKind::ALL.into_iter().find(|k| k.name() == name)
}

/// Serialize `records` (produced under `seed`) in the `wr-faultlog/v1`
/// shape, sealed with the CRC footer.
pub fn render_fault_log(seed: u64, records: &[FaultRecord]) -> String {
    let mut body = String::with_capacity(64 + records.len() * 48);
    body.push_str(&format!(
        "{{\"format\":\"{FAULTLOG_FORMAT}\",\"seed\":{seed},\"records\":{}}}\n",
        records.len()
    ));
    for record in records {
        body.push_str(&format!(
            "{{\"kind\":\"{}\",\"site\":\"{}\",\"index\":{}}}\n",
            record.kind.name(),
            escape(&record.site),
            record.index
        ));
    }
    seal_lines(body)
}

/// Write `records` to `path` crash-safely (temp → fsync → rename).
pub fn save_fault_log(
    path: impl AsRef<Path>,
    seed: u64,
    records: &[FaultRecord],
) -> io::Result<()> {
    write_atomic(path, render_fault_log(seed, records).as_bytes())
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Extract the string value of `"key":"…"` from one record line. The
/// writer controls the shape, so a simple scan (escape-aware up to the
/// closing quote) is sufficient and keeps this crate dependency-free.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return rest.get(..end),
            _ => end += 1,
        }
    }
    None
}

/// Extract the unsigned value of `"key":N` from one line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Parse a `wr-faultlog/v1` document (CRC-verified first).
pub fn parse_fault_log(text: &str) -> io::Result<FaultLog> {
    let body = verify_lines(text)?;
    let mut lines = body.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| bad("empty fault log"))?;
    match field_str(header, "format") {
        Some(FAULTLOG_FORMAT) => {}
        Some(other) => return Err(bad(format!("unknown fault-log format {other:?}"))),
        None => return Err(bad("fault log missing format header")),
    }
    let seed = field_u64(header, "seed").ok_or_else(|| bad("fault log header missing seed"))?;
    let declared =
        field_u64(header, "records").ok_or_else(|| bad("fault log header missing records"))?;
    let mut records = Vec::new();
    for line in lines {
        let kind_name =
            field_str(line, "kind").ok_or_else(|| bad(format!("record missing kind: {line}")))?;
        let kind = kind_from_name(kind_name)
            .ok_or_else(|| bad(format!("unknown fault kind {kind_name:?}")))?;
        let site =
            field_str(line, "site").ok_or_else(|| bad(format!("record missing site: {line}")))?;
        let index =
            field_u64(line, "index").ok_or_else(|| bad(format!("record missing index: {line}")))?;
        records.push(FaultRecord {
            kind,
            site: unescape(site),
            index,
        });
    }
    if records.len() as u64 != declared {
        return Err(bad(format!(
            "fault log declares {declared} records, found {}",
            records.len()
        )));
    }
    Ok(FaultLog { seed, records })
}

/// Read and parse a fault log from `path`.
pub fn load_fault_log(path: impl AsRef<Path>) -> io::Result<FaultLog> {
    let text = std::fs::read_to_string(path)?;
    parse_fault_log(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultInjector, FaultPlan, FaultRates};

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wr_faultlog_{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        dir.join(name)
    }

    fn drive(plan: &FaultPlan) {
        // A mixed workload touching every hook; outcomes are pure in
        // (seed, site, index) so two identical drives log identically.
        for i in 0..200u64 {
            let _ = plan.write_error("file.write", i);
            let mut bytes = vec![7u8; 32];
            let _ = plan.corrupt("file.bytes", i, &mut bytes);
            let mut row = vec![1.0f32; 8];
            let _ = plan.poison("cache.load", i, &mut row);
            let _ = std::panic::catch_unwind(|| plan.maybe_panic("serve.row", i, 0));
        }
    }

    #[test]
    fn round_trip_preserves_seed_order_and_counts() {
        let plan = FaultPlan::new(20240613);
        drive(&plan);
        let records = plan.records();
        assert!(!records.is_empty(), "default rates must inject something");
        let path = tmp_path("round_trip.jsonl");
        save_fault_log(&path, plan.seed(), &records).unwrap();
        let loaded = load_fault_log(&path).unwrap();
        assert_eq!(loaded.seed, 20240613);
        assert_eq!(loaded.records, records);
        assert_eq!(loaded.counts_by_kind(), counts_by_kind(&records));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replaying_the_seed_reproduces_the_logged_counts() {
        // The artifact's whole point: an independent process re-arming the
        // logged seed over the same workload matches the log per kind.
        let first = FaultPlan::new(99);
        drive(&first);
        let rendered = render_fault_log(first.seed(), &first.records());
        let log = parse_fault_log(&rendered).unwrap();

        let replay = FaultPlan::new(log.seed);
        drive(&replay);
        assert_eq!(counts_by_kind(&replay.records()), log.counts_by_kind());
        assert_eq!(replay.records(), log.records);
    }

    #[test]
    fn tampered_logs_are_rejected() {
        let plan = FaultPlan::with_rates(
            5,
            FaultRates {
                poison: 1.0,
                ..FaultRates::default()
            },
        );
        let mut row = vec![1.0f32; 4];
        plan.poison("cache.load", 3, &mut row);
        let sealed = render_fault_log(plan.seed(), &plan.records());
        assert!(parse_fault_log(&sealed).is_ok());
        // Flip a record: CRC catches it.
        let tampered = sealed.replace("\"index\":3", "\"index\":4");
        assert!(parse_fault_log(&tampered).is_err());
        // Unknown kind and count mismatch are typed errors too (re-seal so
        // the CRC passes and the structural check does the rejecting).
        let unknown = seal_lines(
            "{\"format\":\"wr-faultlog/v1\",\"seed\":1,\"records\":1}\n\
             {\"kind\":\"meteor\",\"site\":\"s\",\"index\":0}\n"
                .to_string(),
        );
        assert!(parse_fault_log(&unknown).is_err());
        let short = seal_lines("{\"format\":\"wr-faultlog/v1\",\"seed\":1,\"records\":2}\n".to_string());
        assert!(parse_fault_log(&short).is_err());
    }

    #[test]
    fn sites_with_hostile_characters_survive_the_round_trip() {
        let records = vec![FaultRecord {
            kind: FaultKind::IoError,
            site: "we\"ird\\site\nname".to_string(),
            index: 7,
        }];
        let log = parse_fault_log(&render_fault_log(1, &records)).unwrap();
        assert_eq!(log.records, records);
    }

    #[test]
    fn empty_log_is_valid() {
        let log = parse_fault_log(&render_fault_log(42, &[])).unwrap();
        assert_eq!(log.seed, 42);
        assert!(log.records.is_empty());
        assert_eq!(log.counts_by_kind(), [0; FaultKind::ALL.len()]);
    }
}
