//! Crash-safe file persistence.
//!
//! A `kill -9` between `File::create` and the final `write_all` used to
//! leave a torn artifact under the *final* name — the next process would
//! load half a checkpoint. [`write_atomic`] closes that window: the bytes
//! land in a same-directory temp file, are fsynced, and only then renamed
//! over the destination (rename within a directory is atomic on POSIX),
//! followed by a best-effort directory fsync so the rename itself is
//! durable. Readers therefore see either the old complete file or the new
//! complete file, never a mixture.
//!
//! Torn writes that slip past the filesystem (partial sector flush, media
//! corruption, hostile edits) are caught one layer up by the CRC32
//! integrity footers the formats append; [`crc32`] is the workspace's one
//! implementation (IEEE 802.3 polynomial, table-driven).

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use crate::{FaultInjector, NoFaults};

/// CRC32 (IEEE, reflected, init/final-xor `0xFFFF_FFFF`) of `bytes`.
///
/// The 256-entry table is rebuilt per call (2 048 shift/xor ops) instead
/// of cached in a `static mut` — the build cost is noise next to hashing
/// a checkpoint, and it keeps this crate free of `unsafe` and of
/// cross-thread initialization order questions.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut table = [0u32; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
        }
        *slot = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Marker opening the line-oriented integrity footer used by the
/// workspace's text artifacts (JSONL sequence files, query logs,
/// embedding JSON). A `#` line is a comment to every in-tree loader, so
/// sealed files stay line-diffable and append-friendly right up to the
/// final seal.
pub const CRC_LINE_PREFIX: &str = "#crc32:";

/// Append a `#crc32:<hex>` footer line covering every byte of `body`
/// (newline-terminated first if it wasn't).
pub fn seal_lines(mut body: String) -> String {
    if !body.is_empty() && !body.ends_with('\n') {
        body.push('\n');
    }
    let crc = crc32(body.as_bytes());
    body.push_str(CRC_LINE_PREFIX);
    body.push_str(&format!("{crc:08x}\n"));
    body
}

/// Verify a trailing [`CRC_LINE_PREFIX`] footer and return the body it
/// seals (footer stripped).
///
/// Files without a footer pass through unchanged — hand-written fixtures
/// and pre-seal generations stay loadable — but a footer that is present
/// and wrong is an `InvalidData` error: a damaged sealed file is never
/// silently accepted.
pub fn verify_lines(text: &str) -> io::Result<&str> {
    let trimmed = text.trim_end_matches('\n');
    let last_start = trimmed.rfind('\n').map_or(0, |i| i + 1);
    let last = &trimmed[last_start..];
    if !last.starts_with(CRC_LINE_PREFIX) {
        return Ok(text);
    }
    let stored = u32::from_str_radix(last[CRC_LINE_PREFIX.len()..].trim(), 16).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, "malformed #crc32 integrity footer")
    })?;
    let body = &text[..last_start];
    let actual = crc32(body.as_bytes());
    if stored != actual {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("integrity footer mismatch: stored {stored:08x}, computed {actual:08x}"),
        ));
    }
    Ok(body)
}

/// [`write_atomic_with`] under [`NoFaults`] — the production path.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(path, bytes, &NoFaults, 0)
}

/// Write `bytes` to `path` crash-safely: temp file in the same directory
/// → `sync_all` → atomic rename → best-effort parent-directory fsync.
///
/// The injector is consulted twice, mirroring the two real-world failure
/// classes: [`FaultInjector::write_error`] (site = `"<stem>.write"`)
/// surfaces an I/O error *before* anything is written, and
/// [`FaultInjector::corrupt`] (site = `"<stem>.bytes"`) mangles the
/// outgoing buffer the way a torn flush or flipped bit would — the
/// integrity footer downstream must catch it on load.
pub fn write_atomic_with(
    path: impl AsRef<Path>,
    bytes: &[u8],
    injector: &dyn FaultInjector,
    index: u64,
) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(err) = injector.write_error("file.write", index) {
        return Err(err);
    }
    let mut outgoing = bytes.to_vec();
    injector.corrupt("file.bytes", index, &mut outgoing);

    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = path.with_file_name(format!(".{file_name}.tmp-{}", std::process::id()));
    let result = (|| -> io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(&outgoing)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Durability of the rename itself: fsync the directory. Opening a
        // directory read-only works on Linux; elsewhere this is advisory.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        // Never leave the temp file behind on a failed write.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, FaultRates};

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wr_fault_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_any_single_bit_flip() {
        let payload: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        let clean = crc32(&payload);
        for byte in (0..payload.len()).step_by(17) {
            for bit in 0..8 {
                let mut bad = payload.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), clean, "flip {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn seal_and_verify_round_trip() {
        let sealed = seal_lines("line one\nline two".to_string());
        assert!(sealed.ends_with('\n'));
        let body = verify_lines(&sealed).unwrap();
        assert_eq!(body, "line one\nline two\n");
        // Unsealed text passes through untouched (legacy files).
        assert_eq!(verify_lines("plain\ntext\n").unwrap(), "plain\ntext\n");
        // Empty body seals and verifies.
        let sealed_empty = seal_lines(String::new());
        assert_eq!(verify_lines(&sealed_empty).unwrap(), "");
    }

    #[test]
    fn sealed_text_rejects_any_edit() {
        let sealed = seal_lines("{\"id\":1}\n{\"id\":2}\n".to_string());
        // Tamper with the body.
        let tampered = sealed.replace("\"id\":1", "\"id\":9");
        assert!(verify_lines(&tampered).is_err());
        // Tamper with the footer hex (extra leading digit overflows u32).
        let bad_footer = sealed.replace(CRC_LINE_PREFIX, "#crc32:f");
        assert!(verify_lines(&bad_footer).is_err());
        // Truncate a line out from under the footer.
        let cut = sealed.replacen("{\"id\":1}\n", "", 1);
        assert!(verify_lines(&cut).is_err());
    }

    #[test]
    fn write_atomic_round_trips_and_replaces() {
        let dir = tmp_dir("atomic");
        let path = dir.join("artifact.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second generation").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second generation");
        // No temp litter.
        let litter = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .count();
        assert_eq!(litter, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_error_leaves_previous_generation_intact() {
        let dir = tmp_dir("ioerr");
        let path = dir.join("artifact.bin");
        write_atomic(&path, b"good generation").unwrap();
        let plan = FaultPlan::with_rates(
            9,
            FaultRates {
                io_error: 1.0,
                corrupt: 0.0,
                ..FaultRates::default()
            },
        );
        let err = write_atomic_with(&path, b"doomed", &plan, 0).unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert_eq!(std::fs::read(&path).unwrap(), b"good generation");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_corruption_is_visible_to_readers() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("artifact.bin");
        let plan = FaultPlan::with_rates(
            4,
            FaultRates {
                io_error: 0.0,
                corrupt: 1.0,
                ..FaultRates::default()
            },
        );
        let payload = vec![0xABu8; 128];
        write_atomic_with(&path, &payload, &plan, 1).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_ne!(on_disk, payload, "corruption must land on disk");
        assert!(plan.injected_total() >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
