//! Property-style tests over the autograd engine: linearity of the
//! backward pass, gradient accumulation, and tape independence. Each
//! invariant is swept over a deterministic set of seeds (the offline
//! workspace carries no proptest).

use wr_autograd::Graph;
use wr_tensor::{Rng64, Tensor};

fn rnd(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng64::seed_from(seed);
    Tensor::randn(&[rows, cols], &mut rng)
}

fn seeds() -> impl Iterator<Item = u64> {
    (0..32).map(|i| i * 17 + 3)
}

/// d(sum(αx))/dx = α everywhere.
#[test]
fn scale_gradient_is_constant() {
    for seed in seeds() {
        let alpha = ((seed % 60) as f32) / 10.0 - 3.0;
        let g = Graph::new();
        let x = g.param(rnd(3, 4, seed));
        let y = g.scale(x, alpha);
        let loss = g.sum_all(y);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        for &v in grad.data() {
            assert!((v - alpha).abs() < 1e-5, "seed={seed} alpha={alpha} got {v}");
        }
    }
}

/// Gradients accumulate across use sites: d(sum(x) + sum(x))/dx = 2.
#[test]
fn fanout_accumulates() {
    for seed in seeds() {
        let g = Graph::new();
        let x = g.param(rnd(2, 3, seed));
        let s1 = g.sum_all(x);
        let s2 = g.sum_all(x);
        let loss = g.add(s1, s2);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        for &v in grad.data() {
            assert!((v - 2.0).abs() < 1e-5);
        }
    }
}

/// The chain rule is linear in the upstream gradient: grad of (αL) is
/// α × grad of L.
#[test]
fn backward_is_linear() {
    for seed in seeds() {
        let alpha = 0.1 + ((seed % 39) as f32) / 10.0;
        let run = |scale: f32| -> Tensor {
            let g = Graph::new();
            let x = g.param(rnd(3, 3, seed));
            let w = g.constant(rnd(3, 3, seed + 1));
            let y = g.matmul(x, w);
            let y = g.tanh(y);
            let loss = g.scale(g.sum_all(y), scale);
            g.backward(loss);
            g.grad(x).unwrap()
        };
        let g1 = run(1.0);
        let ga = run(alpha);
        for (a, b) in g1.data().iter().zip(ga.data()) {
            assert!((a * alpha - b).abs() < 1e-4 * (1.0 + b.abs()));
        }
    }
}

/// Graphs are independent: building a second graph never perturbs the
/// gradients computed on the first.
#[test]
fn tapes_are_isolated() {
    for seed in seeds() {
        let g1 = Graph::new();
        let x1 = g1.param(rnd(2, 2, seed));
        let l1 = g1.sum_all(g1.mul(x1, x1));
        g1.backward(l1);
        let before = g1.grad(x1).unwrap();

        let g2 = Graph::new();
        let x2 = g2.param(rnd(2, 2, seed + 7));
        let l2 = g2.sum_all(g2.exp(x2));
        g2.backward(l2);

        let after = g1.grad(x1).unwrap();
        assert_eq!(before.data(), after.data());
    }
}

/// Constants never get gradients, whatever the expression.
#[test]
fn constants_stay_gradient_free() {
    for seed in seeds() {
        let g = Graph::new();
        let c = g.constant(rnd(2, 3, seed));
        let p = g.param(rnd(2, 3, seed + 1));
        let y = g.mul(g.add(c, p), c);
        let loss = g.mean_all(y);
        g.backward(loss);
        assert!(g.grad(c).is_none());
        assert!(g.grad(p).is_some());
    }
}
