//! Finite-difference gradient checking.
//!
//! Every new differentiable op gets validated against a central-difference
//! approximation before it's trusted in training. The checker rebuilds the
//! whole graph per perturbed element, so keep the probed tensors small.

use crate::{Graph, Var};
use wr_tensor::Tensor;

/// Outcome of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest relative error across all checked elements.
    pub max_rel_error: f32,
    /// Element index (param, flat offset) of the worst error.
    pub worst: (usize, usize),
    /// Total elements compared.
    pub checked: usize,
}

impl GradCheckReport {
    pub fn passed(&self, tol: f32) -> bool {
        self.max_rel_error <= tol
    }
}

/// Compare analytic gradients against central finite differences.
///
/// `build` receives a fresh graph and the current parameter tensors and must
/// return `(param_vars, loss_var)` with one `Var` per input tensor, in
/// order. The same closure is used for the analytic pass and every
/// perturbed forward pass.
pub fn check_gradients(
    params: &[Tensor],
    eps: f32,
    build: impl Fn(&Graph, &[Tensor]) -> (Vec<Var>, Var),
) -> GradCheckReport {
    // Analytic pass.
    let g = Graph::new();
    let (vars, loss) = build(&g, params);
    assert_eq!(vars.len(), params.len(), "one Var per parameter expected");
    g.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .zip(params)
        .map(|(&v, p)| g.grad(v).unwrap_or_else(|| Tensor::zeros(p.dims())))
        .collect();

    let mut max_rel_error = 0.0f32;
    let mut worst = (0, 0);
    let mut checked = 0;

    for (pi, p) in params.iter().enumerate() {
        for i in 0..p.numel() {
            let mut plus = params.to_vec();
            plus[pi].data_mut()[i] += eps;
            let gp = Graph::new();
            let (_, lp) = build(&gp, &plus);
            let fp = gp.value(lp).item();

            let mut minus = params.to_vec();
            minus[pi].data_mut()[i] -= eps;
            let gm = Graph::new();
            let (_, lm) = build(&gm, &minus);
            let fm = gm.value(lm).item();

            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic[pi].data()[i];
            let denom = a.abs().max(numeric.abs()).max(1e-3);
            let rel = (a - numeric).abs() / denom;
            if rel > max_rel_error {
                max_rel_error = rel;
                worst = (pi, i);
            }
            checked += 1;
        }
    }

    GradCheckReport {
        max_rel_error,
        worst,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    const TOL: f32 = 2e-2; // f32 forward + finite differences

    fn rnd(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng64::seed_from(seed);
        Tensor::randn(dims, &mut rng).scale(0.5)
    }

    #[test]
    fn grad_matmul_chain() {
        let a = rnd(&[3, 4], 1);
        let b = rnd(&[4, 2], 2);
        let report = check_gradients(&[a, b], 1e-2, |g, ps| {
            let va = g.param(ps[0].clone());
            let vb = g.param(ps[1].clone());
            let y = g.matmul(va, vb);
            let y = g.tanh(y);
            (vec![va, vb], g.sum_all(y))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_elementwise_ops() {
        let a = rnd(&[2, 3], 3);
        let b = rnd(&[2, 3], 4).add_scalar(2.0); // keep denominators away from 0
        let report = check_gradients(&[a, b], 1e-2, |g, ps| {
            let va = g.param(ps[0].clone());
            let vb = g.param(ps[1].clone());
            let s = g.add(va, vb);
            let m = g.mul(s, va);
            let d = g.div(m, vb);
            let e = g.sub(d, va);
            (vec![va, vb], g.mean_all(e))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_activations() {
        let a = rnd(&[2, 4], 5);
        let report = check_gradients(&[a], 1e-2, |g, ps| {
            let v = g.param(ps[0].clone());
            let r = g.gelu(v);
            let s = g.sigmoid(r);
            let t = g.tanh(s);
            (vec![v], g.sum_all(t))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_relu_away_from_kink() {
        // keep values away from 0 so the subgradient is well-defined
        let a = rnd(&[3, 3], 6).map(|x| if x.abs() < 0.2 { x.signum() * 0.5 } else { x });
        let report = check_gradients(&[a], 1e-3, |g, ps| {
            let v = g.param(ps[0].clone());
            let r = g.relu(v);
            (vec![v], g.sum_all(r))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_softmax_cross_entropy() {
        let logits = rnd(&[4, 5], 7);
        let targets = vec![0usize, 2, 4, 1];
        let report = check_gradients(&[logits], 1e-2, |g, ps| {
            let v = g.param(ps[0].clone());
            let loss = g.cross_entropy(v, &targets);
            (vec![v], loss)
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_softmax_rows() {
        let a = rnd(&[3, 4], 8);
        let w = rnd(&[3, 4], 9);
        let report = check_gradients(&[a.clone()], 1e-2, |g, ps| {
            let v = g.param(ps[0].clone());
            let s = g.softmax_rows(v);
            let wv = g.constant(w.clone());
            let p = g.mul(s, wv);
            (vec![v], g.sum_all(p))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_layernorm() {
        let x = rnd(&[3, 6], 10);
        let gamma = Tensor::ones(&[6]).add_scalar(0.3);
        let beta = rnd(&[6], 11);
        let w = rnd(&[3, 6], 12);
        let report = check_gradients(&[x, gamma, beta], 1e-2, |g, ps| {
            let vx = g.param(ps[0].clone());
            let vg = g.param(ps[1].clone());
            let vb = g.param(ps[2].clone());
            let y = g.layer_norm_rows(vx, vg, vb, 1e-5);
            let wv = g.constant(w.clone());
            let p = g.mul(y, wv);
            (vec![vx, vg, vb], g.sum_all(p))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_bmm_and_softmax3d() {
        let q = rnd(&[2, 3, 4], 13);
        let k = rnd(&[2, 3, 4], 14);
        let v = rnd(&[2, 3, 4], 15);
        let report = check_gradients(&[q, k, v], 1e-2, |g, ps| {
            let vq = g.param(ps[0].clone());
            let vk = g.param(ps[1].clone());
            let vv = g.param(ps[2].clone());
            let scores = g.bmm_nt(vq, vk);
            let scores = g.scale(scores, 0.5);
            let attn = g.softmax3d_last(scores);
            let out = g.bmm(attn, vv);
            (vec![vq, vk, vv], g.sum_all(out))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_gather_and_slice() {
        let table = rnd(&[5, 4], 16);
        let w = rnd(&[3, 2], 17);
        let report = check_gradients(&[table], 1e-2, |g, ps| {
            let t = g.param(ps[0].clone());
            let e = g.gather_rows(t, &[4, 0, 4]); // repeated index: grads accumulate
            let s = g.slice_cols(e, 1, 3);
            let wv = g.constant(w.clone());
            let p = g.mul(s, wv);
            (vec![t], g.sum_all(p))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_concat_broadcast() {
        let a = rnd(&[2, 3], 18);
        let b = rnd(&[2, 2], 19);
        let bias = rnd(&[5], 20);
        let report = check_gradients(&[a, b, bias], 1e-2, |g, ps| {
            let va = g.param(ps[0].clone());
            let vb = g.param(ps[1].clone());
            let vbias = g.param(ps[2].clone());
            let c = g.concat_cols(&[va, vb]);
            let y = g.add_row_broadcast(c, vbias);
            let y = g.tanh(y);
            (vec![va, vb, vbias], g.sum_all(y))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_l2_normalize() {
        let a = rnd(&[3, 4], 21).add_scalar(0.5);
        let w = rnd(&[3, 4], 22);
        let report = check_gradients(&[a], 1e-3, |g, ps| {
            let v = g.param(ps[0].clone());
            let n = g.l2_normalize_rows(v);
            let wv = g.constant(w.clone());
            let p = g.mul(n, wv);
            (vec![v], g.sum_all(p))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_exp_ln() {
        let a = rnd(&[2, 3], 23).map(|x| x.abs() + 0.5);
        let report = check_gradients(&[a], 1e-3, |g, ps| {
            let v = g.param(ps[0].clone());
            let e = g.exp(v);
            let l = g.ln(e);
            let y = g.mul(l, v);
            (vec![v], g.mean_all(y))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_transpose_reshape_scale() {
        let a = rnd(&[3, 4], 24);
        let report = check_gradients(&[a], 1e-2, |g, ps| {
            let v = g.param(ps[0].clone());
            let t = g.transpose(v);
            let r = g.reshape(t, &[2, 6]);
            let s = g.scale(r, 1.5);
            let s = g.add_scalar(s, 0.1);
            let n = g.neg(s);
            (vec![v], g.sum_all(n))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_mask_rows_and_mul_broadcast() {
        let a = rnd(&[3, 4], 25);
        let row = rnd(&[4], 26).add_scalar(1.5);
        let report = check_gradients(&[a, row], 1e-2, |g, ps| {
            let v = g.param(ps[0].clone());
            let r = g.param(ps[1].clone());
            let m = g.mul_row_broadcast(v, r);
            let masked = g.mask_rows(m, &[1.0, 0.0, 1.0]);
            (vec![v, r], g.sum_all(masked))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_add_mask2d() {
        let a = rnd(&[2, 3, 3], 27);
        let mask = Tensor::from_vec(
            vec![0.0, -1.0, -1.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0],
            &[3, 3],
        );
        // Weight the softmax output: summing softmax rows alone is constant,
        // which would make every gradient ~0 and the check vacuous.
        let w = rnd(&[2, 3, 3], 28);
        let report = check_gradients(&[a], 1e-2, |g, ps| {
            let v = g.param(ps[0].clone());
            let m = g.add_mask2d(v, &mask);
            let s = g.softmax3d_last(m);
            let wv = g.constant(w.clone());
            let p = g.mul(s, wv);
            (vec![v], g.sum_all(p))
        });
        assert!(report.passed(TOL), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn grad_dropout_scales_mask() {
        // With a fixed RNG the mask is deterministic within one graph, so
        // check dy/dx equals the mask itself.
        let g = Graph::new();
        let x = g.param(Tensor::ones(&[4, 4]));
        let mut rng = Rng64::seed_from(99);
        let y = g.dropout(x, 0.5, &mut rng);
        let loss = g.sum_all(y);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        let yv = g.value(y);
        // y = x * mask with x = 1, so grad == mask == y.
        assert_eq!(grad.data(), yv.data());
        let kept = grad.data().iter().filter(|&&v| v > 0.0).count();
        assert!(kept > 0 && kept < 16);
        for &v in grad.data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
    }
}
