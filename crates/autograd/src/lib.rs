//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation applied to [`Var`] handles; calling
//! [`Graph::backward`] walks the tape in reverse and accumulates gradients
//! for every node that (transitively) depends on a parameter. A fresh graph
//! is built per training step — parameters live outside the graph and are
//! re-registered each step, which keeps the tape simple and makes "frozen"
//! inputs free (constants never receive gradients).
//!
//! The op set is exactly what the WhitenRec model zoo needs: dense algebra
//! (matmul / batched matmul), pointwise nonlinearities, row softmax and
//! fused cross-entropy, LayerNorm, dropout, embedding gather, row/column
//! concatenation and slicing for attention heads, and L2 row normalization
//! for the contrastive baselines.
//!
//! # Example
//! ```
//! use wr_autograd::Graph;
//! use wr_tensor::Tensor;
//!
//! let g = Graph::new();
//! let w = g.param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
//! let x = g.constant(Tensor::from_vec(vec![1.0, 0.0], &[1, 2]));
//! let y = g.matmul(x, w);
//! let loss = g.sum_all(y);
//! g.backward(loss);
//! let grad = g.grad(w).unwrap();
//! assert_eq!(grad.data(), &[1.0, 1.0, 0.0, 0.0]);
//! ```

mod check;
mod graph;
mod ops;

pub use check::{check_gradients, GradCheckReport};
pub use graph::{Graph, Var};
