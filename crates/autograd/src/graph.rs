//! The tape: node storage, forward value bookkeeping, and the backward pass.

use std::cell::RefCell;
use std::rc::Rc;

use wr_tensor::Tensor;

/// Handle to a node on the tape. Cheap to copy; only valid for the graph
/// that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var {
    pub(crate) id: usize,
}

/// Recorded operation. Inputs are stored as `Var` ids; constant data that
/// participates in the forward pass but never receives gradients (masks,
/// gather indices) is stored inline behind `Rc`.
pub(crate) enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var),
    Exp(Var),
    Ln(Var),
    Relu(Var),
    Gelu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Matmul(Var, Var),
    Bmm(Var, Var),
    BmmNt(Var, Var),
    Transpose(Var),
    Reshape(Var),
    SliceCols(Var, usize, usize),
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    AddRowBroadcast(Var, Var),
    MulRowBroadcast(Var, Var),
    GatherRows(Var, Rc<Vec<usize>>),
    SoftmaxRows(Var),
    Softmax3dLast(Var),
    AddMask2d(Var, Rc<Tensor>),
    LayerNormRows { x: Var, gamma: Var, beta: Var },
    Dropout(Var),
    CrossEntropy { logits: Var, targets: Rc<Vec<usize>> },
    L2NormalizeRows(Var),
    MeanAll(Var),
    SumAll(Var),
    MaskRows(Var, Rc<Vec<f32>>),
}

/// Saved forward byproducts a backward rule needs.
pub(crate) enum Aux {
    None,
    One(Tensor),
    Two(Tensor, Tensor),
}

pub(crate) struct Inner {
    pub values: Vec<Tensor>,
    pub grads: Vec<Option<Tensor>>,
    pub ops: Vec<Op>,
    pub aux: Vec<Aux>,
    pub requires: Vec<bool>,
}

/// A single-use computation tape.
///
/// Build one per forward/backward step. Interior mutability keeps the API
/// ergonomic (`g.matmul(a, b)` with `&self`); the graph is intentionally
/// `!Sync` — training steps are single-threaded, parallelism lives at the
/// data level.
pub struct Graph {
    pub(crate) inner: RefCell<Inner>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    pub fn new() -> Self {
        Graph {
            inner: RefCell::new(Inner {
                values: Vec::new(),
                grads: Vec::new(),
                ops: Vec::new(),
                aux: Vec::new(),
                requires: Vec::new(),
            }),
        }
    }

    /// Register a trainable parameter. Gradients will be accumulated for it.
    pub fn param(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, Aux::None, true)
    }

    /// Register a constant input. No gradient is ever computed for it.
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, Aux::None, false)
    }

    /// Read a copy of a node's forward value.
    pub fn value(&self, v: Var) -> Tensor {
        self.inner.borrow().values[v.id].clone()
    }

    /// Inspect a node's shape without cloning the data.
    pub fn dims(&self, v: Var) -> Vec<usize> {
        self.inner.borrow().values[v.id].dims().to_vec()
    }

    /// Gradient of the last `backward` call w.r.t. `v`, if any was produced.
    pub fn grad(&self, v: Var) -> Option<Tensor> {
        self.inner.borrow().grads[v.id].clone()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.inner.borrow().values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push(&self, value: Tensor, op: Op, aux: Aux, requires: bool) -> Var {
        let mut inner = self.inner.borrow_mut();
        let id = inner.values.len();
        inner.values.push(value);
        inner.grads.push(None);
        inner.ops.push(op);
        inner.aux.push(aux);
        inner.requires.push(requires);
        Var { id }
    }

    pub(crate) fn requires(&self, v: Var) -> bool {
        self.inner.borrow().requires[v.id]
    }

    /// Run the backward pass from a scalar `loss` node.
    ///
    /// Panics if `loss` is not a single-element tensor. Gradients are
    /// accumulated only into nodes that transitively depend on a parameter.
    pub fn backward(&self, loss: Var) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            inner.values[loss.id].numel(),
            1,
            "backward() must start from a scalar loss"
        );
        let seed_dims = inner.values[loss.id].dims().to_vec();
        inner.grads[loss.id] = Some(Tensor::ones(&seed_dims));

        for id in (0..=loss.id).rev() {
            if inner.grads[id].is_none() || !inner.requires[id] {
                continue;
            }
            // wr-check: allow(R1) — Some is guaranteed by the is_none()
            // continue two lines above.
            let g = inner.grads[id].take().unwrap();
            backward_step(&mut inner, id, &g);
            inner.grads[id] = Some(g);
        }
    }
}

/// Accumulate `delta` into `grads[target]`, allocating on first touch.
fn accumulate(inner: &mut Inner, target: usize, delta: Tensor) {
    if !inner.requires[target] {
        return;
    }
    match &mut inner.grads[target] {
        Some(existing) => existing.add_assign_(&delta),
        slot @ None => *slot = Some(delta),
    }
}

/// Dispatch one node's backward rule. `g` is the upstream gradient with the
/// same shape as the node's value.
fn backward_step(inner: &mut Inner, id: usize, g: &Tensor) {
    // `ops` is only read here; split borrows via raw indexing on `inner`.
    // Using a match on a reference keeps this a single dispatch point.
    let op = std::mem::replace(&mut inner.ops[id], Op::Leaf);
    match &op {
        Op::Leaf => {}
        Op::Add(a, b) => {
            accumulate(inner, a.id, g.clone());
            accumulate(inner, b.id, g.clone());
        }
        Op::Sub(a, b) => {
            accumulate(inner, a.id, g.clone());
            accumulate(inner, b.id, g.neg());
        }
        Op::Mul(a, b) => {
            let da = g.mul(&inner.values[b.id]);
            let db = g.mul(&inner.values[a.id]);
            accumulate(inner, a.id, da);
            accumulate(inner, b.id, db);
        }
        Op::Div(a, b) => {
            let bv = &inner.values[b.id];
            let da = g.div(bv);
            let db = g.mul(&inner.values[a.id]).div(bv).div(bv).neg();
            accumulate(inner, a.id, da);
            accumulate(inner, b.id, db);
        }
        Op::Neg(a) => accumulate(inner, a.id, g.neg()),
        Op::Scale(a, s) => accumulate(inner, a.id, g.scale(*s)),
        Op::AddScalar(a) => accumulate(inner, a.id, g.clone()),
        Op::Exp(a) => {
            // y = exp(x) saved as the node's value
            let da = g.mul(&inner.values[id]);
            accumulate(inner, a.id, da);
        }
        Op::Ln(a) => {
            let da = g.div(&inner.values[a.id]);
            accumulate(inner, a.id, da);
        }
        Op::Relu(a) => {
            let x = &inner.values[a.id];
            let mut da = g.clone();
            for (d, &xv) in da.data_mut().iter_mut().zip(x.data()) {
                if xv <= 0.0 {
                    *d = 0.0;
                }
            }
            accumulate(inner, a.id, da);
        }
        Op::Gelu(a) => {
            let x = &inner.values[a.id];
            let mut da = g.clone();
            for (d, &xv) in da.data_mut().iter_mut().zip(x.data()) {
                *d *= gelu_derivative(xv);
            }
            accumulate(inner, a.id, da);
        }
        Op::Sigmoid(a) => {
            let y = &inner.values[id];
            let mut da = g.clone();
            for (d, &yv) in da.data_mut().iter_mut().zip(y.data()) {
                *d *= yv * (1.0 - yv);
            }
            accumulate(inner, a.id, da);
        }
        Op::Tanh(a) => {
            let y = &inner.values[id];
            let mut da = g.clone();
            for (d, &yv) in da.data_mut().iter_mut().zip(y.data()) {
                *d *= 1.0 - yv * yv;
            }
            accumulate(inner, a.id, da);
        }
        Op::Matmul(a, b) => {
            let da = g.matmul_nt(&inner.values[b.id]);
            let db = inner.values[a.id].matmul_tn(g);
            accumulate(inner, a.id, da);
            accumulate(inner, b.id, db);
        }
        Op::Bmm(a, b) => {
            let da = g.bmm_nt(&inner.values[b.id]);
            let db = inner.values[a.id].bmm_tn(g);
            accumulate(inner, a.id, da);
            accumulate(inner, b.id, db);
        }
        Op::BmmNt(a, b) => {
            // C = A @ B^T  =>  dA = dC @ B,  dB = dC^T @ A
            let da = g.bmm(&inner.values[b.id]);
            let db = g.bmm_tn(&inner.values[a.id]);
            accumulate(inner, a.id, da);
            accumulate(inner, b.id, db);
        }
        Op::Transpose(a) => accumulate(inner, a.id, g.transpose()),
        Op::Reshape(a) => {
            let dims = inner.values[a.id].dims().to_vec();
            accumulate(inner, a.id, g.reshape(&dims));
        }
        Op::SliceCols(a, start, _end) => {
            let src = &inner.values[a.id];
            let mut da = Tensor::zeros(src.dims());
            let w = g.cols();
            for r in 0..g.rows() {
                let dst = da.row_mut(r);
                dst[*start..*start + w].copy_from_slice(g.row(r));
            }
            accumulate(inner, a.id, da);
        }
        Op::ConcatCols(parts) => {
            let mut offset = 0;
            for p in parts {
                let w = inner.values[p.id].cols();
                let dp = g.slice_cols(offset, offset + w);
                offset += w;
                accumulate(inner, p.id, dp);
            }
        }
        Op::ConcatRows(parts) => {
            let mut offset = 0;
            for p in parts {
                let h = inner.values[p.id].rows();
                let dp = g.slice_rows(offset, offset + h);
                offset += h;
                accumulate(inner, p.id, dp);
            }
        }
        Op::AddRowBroadcast(a, row) => {
            accumulate(inner, a.id, g.clone());
            accumulate(inner, row.id, g.sum_rows());
        }
        Op::MulRowBroadcast(a, row) => {
            let da = g.mul_row_broadcast(&inner.values[row.id]);
            let drow = g.mul(&inner.values[a.id]).sum_rows();
            accumulate(inner, a.id, da);
            accumulate(inner, row.id, drow);
        }
        Op::GatherRows(table, indices) => {
            let cols = inner.values[table.id].cols();
            let mut dt = Tensor::zeros(inner.values[table.id].dims());
            for (r, &ix) in indices.iter().enumerate() {
                let grow = g.row(r);
                let trow = dt.row_mut(ix);
                for (t, &gv) in trow.iter_mut().zip(grow) {
                    *t += gv;
                }
                debug_assert_eq!(grow.len(), cols);
            }
            accumulate(inner, table.id, dt);
        }
        Op::SoftmaxRows(a) => {
            let y = &inner.values[id];
            let mut da = g.clone();
            for r in 0..y.rows() {
                softmax_backward_row(da.row_mut(r), y.row(r));
            }
            accumulate(inner, a.id, da);
        }
        Op::Softmax3dLast(a) => {
            let y = &inner.values[id];
            let dims = y.dims().to_vec();
            let last = dims[dims.len() - 1];
            let rows = y.numel() / last;
            let mut da = g.clone();
            let yv = y.data();
            for r in 0..rows {
                let range = r * last..(r + 1) * last;
                softmax_backward_row(&mut da.data_mut()[range.clone()], &yv[range]);
            }
            accumulate(inner, a.id, da);
        }
        Op::AddMask2d(a, _mask) => accumulate(inner, a.id, g.clone()),
        Op::LayerNormRows { x, gamma, beta } => {
            let (xhat, inv_std) = match &inner.aux[id] {
                Aux::Two(a, b) => (a.clone(), b.clone()),
                _ => unreachable!("LayerNorm aux missing"),
            };
            let gm = inner.values[gamma.id].clone();
            let n = xhat.cols() as f32;

            // dBeta and dGamma.
            accumulate(inner, beta.id, g.sum_rows());
            accumulate(inner, gamma.id, g.mul(&xhat).sum_rows());

            // dX per row: inv_std/n * (n*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
            let dxhat = g.mul_row_broadcast(&gm);
            let mut dx = Tensor::zeros(xhat.dims());
            for r in 0..xhat.rows() {
                let dh = dxhat.row(r);
                let xh = xhat.row(r);
                let s1: f32 = dh.iter().sum();
                let s2: f32 = dh.iter().zip(xh).map(|(a, b)| a * b).sum();
                let is = inv_std.data()[r];
                for (j, out) in dx.row_mut(r).iter_mut().enumerate() {
                    *out = is / n * (n * dh[j] - s1 - xh[j] * s2);
                }
            }
            accumulate(inner, x.id, dx);
        }
        Op::Dropout(a) => {
            let mask = match &inner.aux[id] {
                Aux::One(m) => m.clone(),
                _ => unreachable!("Dropout aux missing"),
            };
            accumulate(inner, a.id, g.mul(&mask));
        }
        Op::CrossEntropy { logits, targets } => {
            let softmax = match &inner.aux[id] {
                Aux::One(s) => s.clone(),
                _ => unreachable!("CrossEntropy aux missing"),
            };
            let b = targets.len() as f32;
            let scale = g.item() / b;
            let mut dl = softmax;
            for (r, &t) in targets.iter().enumerate() {
                *dl.at2_mut(r, t) -= 1.0;
            }
            dl.scale_(scale);
            accumulate(inner, logits.id, dl);
        }
        Op::L2NormalizeRows(a) => {
            let (y, norms) = match &inner.aux[id] {
                Aux::Two(y, n) => (y.clone(), n.clone()),
                _ => unreachable!("L2Normalize aux missing"),
            };
            let mut da = Tensor::zeros(y.dims());
            for r in 0..y.rows() {
                let yr = y.row(r);
                let gr = g.row(r);
                let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                let n = norms.data()[r];
                for (j, out) in da.row_mut(r).iter_mut().enumerate() {
                    *out = (gr[j] - yr[j] * dot) / n;
                }
            }
            accumulate(inner, a.id, da);
        }
        Op::MeanAll(a) => {
            let numel = inner.values[a.id].numel() as f32;
            let dims = inner.values[a.id].dims().to_vec();
            accumulate(inner, a.id, Tensor::full(&dims, g.item() / numel));
        }
        Op::SumAll(a) => {
            let dims = inner.values[a.id].dims().to_vec();
            accumulate(inner, a.id, Tensor::full(&dims, g.item()));
        }
        Op::MaskRows(a, mask) => {
            let mut da = g.clone();
            for r in 0..da.rows() {
                let m = mask[r];
                for v in da.row_mut(r) {
                    *v *= m;
                }
            }
            accumulate(inner, a.id, da);
        }
    }
    inner.ops[id] = op;
}

/// In-place `dy → dx` for one softmax row: `dx = y ⊙ (dy − (dy·y))`.
fn softmax_backward_row(dy: &mut [f32], y: &[f32]) {
    let dot: f32 = dy.iter().zip(y).map(|(a, b)| a * b).sum();
    for (d, &yv) in dy.iter_mut().zip(y) {
        *d = yv * (*d - dot);
    }
}

/// Derivative of the tanh-approximated GELU.
fn gelu_derivative(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_bookkeeping() {
        let g = Graph::new();
        let p = g.param(Tensor::ones(&[2, 2]));
        let c = g.constant(Tensor::zeros(&[3]));
        assert!(g.requires(p));
        assert!(!g.requires(c));
        assert_eq!(g.len(), 2);
        assert_eq!(g.dims(p), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let g = Graph::new();
        let p = g.param(Tensor::ones(&[2, 2]));
        g.backward(p);
    }

    #[test]
    fn constant_gets_no_grad() {
        let g = Graph::new();
        let p = g.param(Tensor::ones(&[1, 2]));
        let c = g.constant(Tensor::ones(&[1, 2]));
        let s = g.add(p, c);
        let loss = g.sum_all(s);
        g.backward(loss);
        assert!(g.grad(p).is_some());
        assert!(g.grad(c).is_none());
    }
}
