//! Forward constructors: each method runs the op eagerly and records it on
//! the tape.

use std::rc::Rc;

use crate::graph::{Aux, Graph, Op, Var};
use wr_tensor::{Rng64, Tensor};

impl Graph {
    fn any_requires(&self, vars: &[Var]) -> bool {
        vars.iter().any(|&v| self.requires(v))
    }

    fn val(&self, v: Var) -> Tensor {
        self.inner.borrow().values[v.id].clone()
    }

    // ----- arithmetic -----------------------------------------------------

    pub fn add(&self, a: Var, b: Var) -> Var {
        let out = self.val(a).add(&self.val(b));
        self.push(out, Op::Add(a, b), Aux::None, self.any_requires(&[a, b]))
    }

    pub fn sub(&self, a: Var, b: Var) -> Var {
        let out = self.val(a).sub(&self.val(b));
        self.push(out, Op::Sub(a, b), Aux::None, self.any_requires(&[a, b]))
    }

    pub fn mul(&self, a: Var, b: Var) -> Var {
        let out = self.val(a).mul(&self.val(b));
        self.push(out, Op::Mul(a, b), Aux::None, self.any_requires(&[a, b]))
    }

    pub fn div(&self, a: Var, b: Var) -> Var {
        let out = self.val(a).div(&self.val(b));
        self.push(out, Op::Div(a, b), Aux::None, self.any_requires(&[a, b]))
    }

    pub fn neg(&self, a: Var) -> Var {
        let out = self.val(a).neg();
        self.push(out, Op::Neg(a), Aux::None, self.requires(a))
    }

    pub fn scale(&self, a: Var, s: f32) -> Var {
        let out = self.val(a).scale(s);
        self.push(out, Op::Scale(a, s), Aux::None, self.requires(a))
    }

    pub fn add_scalar(&self, a: Var, s: f32) -> Var {
        let out = self.val(a).add_scalar(s);
        self.push(out, Op::AddScalar(a), Aux::None, self.requires(a))
    }

    pub fn exp(&self, a: Var) -> Var {
        let out = self.val(a).exp();
        self.push(out, Op::Exp(a), Aux::None, self.requires(a))
    }

    /// Natural log; caller must ensure strictly positive inputs.
    pub fn ln(&self, a: Var) -> Var {
        let out = self.val(a).ln();
        self.push(out, Op::Ln(a), Aux::None, self.requires(a))
    }

    // ----- nonlinearities ---------------------------------------------------

    pub fn relu(&self, a: Var) -> Var {
        let out = self.val(a).relu();
        self.push(out, Op::Relu(a), Aux::None, self.requires(a))
    }

    pub fn gelu(&self, a: Var) -> Var {
        let out = self.val(a).gelu();
        self.push(out, Op::Gelu(a), Aux::None, self.requires(a))
    }

    pub fn sigmoid(&self, a: Var) -> Var {
        let out = self.val(a).sigmoid();
        self.push(out, Op::Sigmoid(a), Aux::None, self.requires(a))
    }

    pub fn tanh(&self, a: Var) -> Var {
        let out = self.val(a).tanh();
        self.push(out, Op::Tanh(a), Aux::None, self.requires(a))
    }

    // ----- linear algebra ---------------------------------------------------

    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let out = self.val(a).matmul(&self.val(b));
        self.push(out, Op::Matmul(a, b), Aux::None, self.any_requires(&[a, b]))
    }

    /// Batched matmul of rank-3 tensors `[b,m,k] @ [b,k,n]`.
    pub fn bmm(&self, a: Var, b: Var) -> Var {
        let out = self.val(a).bmm(&self.val(b));
        self.push(out, Op::Bmm(a, b), Aux::None, self.any_requires(&[a, b]))
    }

    /// Batched `A @ Bᵀ`: `[b,m,k] @ [b,n,k]ᵀ → [b,m,n]` (attention scores).
    pub fn bmm_nt(&self, a: Var, b: Var) -> Var {
        let out = self.val(a).bmm_nt(&self.val(b));
        self.push(out, Op::BmmNt(a, b), Aux::None, self.any_requires(&[a, b]))
    }

    pub fn transpose(&self, a: Var) -> Var {
        let out = self.val(a).transpose();
        self.push(out, Op::Transpose(a), Aux::None, self.requires(a))
    }

    pub fn reshape(&self, a: Var, dims: &[usize]) -> Var {
        let out = self.val(a).reshape(dims);
        self.push(out, Op::Reshape(a), Aux::None, self.requires(a))
    }

    // ----- structural -------------------------------------------------------

    /// Copy columns `start..end` of a matrix node.
    pub fn slice_cols(&self, a: Var, start: usize, end: usize) -> Var {
        let out = self.val(a).slice_cols(start, end);
        self.push(out, Op::SliceCols(a, start, end), Aux::None, self.requires(a))
    }

    /// Concatenate matrix nodes along columns.
    pub fn concat_cols(&self, parts: &[Var]) -> Var {
        let vals: Vec<Tensor> = parts.iter().map(|&p| self.val(p)).collect();
        let refs: Vec<&Tensor> = vals.iter().collect();
        let out = Tensor::concat_cols(&refs);
        let requires = self.any_requires(parts);
        self.push(out, Op::ConcatCols(parts.to_vec()), Aux::None, requires)
    }

    /// Concatenate matrix nodes along rows.
    pub fn concat_rows(&self, parts: &[Var]) -> Var {
        let vals: Vec<Tensor> = parts.iter().map(|&p| self.val(p)).collect();
        let refs: Vec<&Tensor> = vals.iter().collect();
        let out = Tensor::concat_rows(&refs);
        let requires = self.any_requires(parts);
        self.push(out, Op::ConcatRows(parts.to_vec()), Aux::None, requires)
    }

    /// Add a length-`cols` vector node to every row of a matrix node
    /// (bias add).
    pub fn add_row_broadcast(&self, a: Var, row: Var) -> Var {
        let out = self.val(a).add_row_broadcast(&self.val(row));
        self.push(
            out,
            Op::AddRowBroadcast(a, row),
            Aux::None,
            self.any_requires(&[a, row]),
        )
    }

    /// Multiply every row of a matrix node elementwise by a vector node.
    pub fn mul_row_broadcast(&self, a: Var, row: Var) -> Var {
        let out = self.val(a).mul_row_broadcast(&self.val(row));
        self.push(
            out,
            Op::MulRowBroadcast(a, row),
            Aux::None,
            self.any_requires(&[a, row]),
        )
    }

    /// Embedding lookup: gather rows of `table` at `indices`.
    pub fn gather_rows(&self, table: Var, indices: &[usize]) -> Var {
        let out = self.val(table).gather_rows(indices);
        self.push(
            out,
            Op::GatherRows(table, Rc::new(indices.to_vec())),
            Aux::None,
            self.requires(table),
        )
    }

    /// Zero out entire rows (padding positions): row `r` is multiplied by
    /// `mask[r]` (typically 0.0 or 1.0).
    pub fn mask_rows(&self, a: Var, mask: &[f32]) -> Var {
        let mut out = self.val(a);
        assert_eq!(out.rows(), mask.len(), "mask_rows: length mismatch");
        for r in 0..out.rows() {
            let m = mask[r];
            for v in out.row_mut(r) {
                *v *= m;
            }
        }
        self.push(
            out,
            Op::MaskRows(a, Rc::new(mask.to_vec())),
            Aux::None,
            self.requires(a),
        )
    }

    // ----- normalization / attention helpers --------------------------------

    /// Row-wise softmax of a matrix node.
    pub fn softmax_rows(&self, a: Var) -> Var {
        let out = self.val(a).softmax_rows();
        self.push(out, Op::SoftmaxRows(a), Aux::None, self.requires(a))
    }

    /// Softmax over the last axis of a rank-3 node (attention weights).
    pub fn softmax3d_last(&self, a: Var) -> Var {
        let v = self.val(a);
        assert_eq!(v.rank(), 3, "softmax3d_last requires rank-3");
        let dims = v.dims().to_vec();
        let last = dims[2];
        let rows = v.numel() / last;
        let mut out = v;
        for r in 0..rows {
            wr_tensor::softmax_in_place(&mut out.data_mut()[r * last..(r + 1) * last]);
        }
        self.push(out, Op::Softmax3dLast(a), Aux::None, self.requires(a))
    }

    /// Add a constant `[t, t]` mask to every batch slice of a `[b, t, t]`
    /// node (causal masking: forbidden entries hold large negatives).
    pub fn add_mask2d(&self, a: Var, mask: &Tensor) -> Var {
        let v = self.val(a);
        assert_eq!(v.rank(), 3, "add_mask2d requires rank-3");
        let (b, t1, t2) = (v.dims()[0], v.dims()[1], v.dims()[2]);
        assert_eq!(mask.dims(), &[t1, t2], "add_mask2d: mask shape mismatch");
        let mut out = v;
        let md = mask.data();
        for i in 0..b {
            for (o, &m) in out.data_mut()[i * t1 * t2..(i + 1) * t1 * t2]
                .iter_mut()
                .zip(md)
            {
                *o += m;
            }
        }
        self.push(
            out,
            Op::AddMask2d(a, Rc::new(mask.clone())),
            Aux::None,
            self.requires(a),
        )
    }

    /// LayerNorm over the last axis of a matrix node:
    /// `y = γ ⊙ (x − mean)/sqrt(var + eps) + β` per row.
    pub fn layer_norm_rows(&self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let xv = self.val(x);
        assert!(xv.rank() == 2, "layer_norm_rows requires a matrix");
        let (rows, cols) = (xv.rows(), xv.cols());
        let mut xhat = Tensor::zeros(&[rows, cols]);
        let mut inv_std = Tensor::zeros(&[rows]);
        for r in 0..rows {
            let row = xv.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let is = 1.0 / (var + eps).sqrt();
            inv_std.data_mut()[r] = is;
            for (o, &v) in xhat.row_mut(r).iter_mut().zip(row) {
                *o = (v - mean) * is;
            }
        }
        let out = xhat
            .mul_row_broadcast(&self.val(gamma))
            .add_row_broadcast(&self.val(beta));
        self.push(
            out,
            Op::LayerNormRows { x, gamma, beta },
            Aux::Two(xhat, inv_std),
            self.any_requires(&[x, gamma, beta]),
        )
    }

    /// Inverted dropout with keep-probability `1 - p`. Pass `p = 0` (or use
    /// eval-mode code paths) to disable.
    pub fn dropout(&self, a: Var, p: f32, rng: &mut Rng64) -> Var {
        if p <= 0.0 {
            return a;
        }
        assert!(p < 1.0, "dropout probability must be < 1");
        let v = self.val(a);
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..v.numel())
            .map(|_| if rng.chance(keep) { scale } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask_data, v.dims());
        let out = v.mul(&mask);
        self.push(out, Op::Dropout(a), Aux::One(mask), self.requires(a))
    }

    /// Normalize each row of a matrix node to unit L2 norm.
    pub fn l2_normalize_rows(&self, a: Var) -> Var {
        let v = self.val(a);
        assert!(v.rank() == 2, "l2_normalize_rows requires a matrix");
        let mut y = v.clone();
        let mut norms = Tensor::zeros(&[v.rows()]);
        for r in 0..v.rows() {
            let norm = v.row(r).iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
            norms.data_mut()[r] = norm;
            for o in y.row_mut(r) {
                *o /= norm;
            }
        }
        let out = y.clone();
        self.push(
            out,
            Op::L2NormalizeRows(a),
            Aux::Two(y, norms),
            self.requires(a),
        )
    }

    // ----- losses / reductions -----------------------------------------------

    /// Mean cross-entropy between row logits and integer targets.
    ///
    /// Fused softmax + NLL: numerically stable and avoids materializing the
    /// log-probabilities on the tape.
    pub fn cross_entropy(&self, logits: Var, targets: &[usize]) -> Var {
        let lv = self.val(logits);
        assert!(lv.rank() == 2, "cross_entropy requires matrix logits");
        assert_eq!(lv.rows(), targets.len(), "cross_entropy: batch mismatch");
        let softmax = lv.softmax_rows();
        let mut loss = 0.0f64;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < lv.cols(), "cross_entropy: target {t} out of range");
            loss -= (softmax.at2(r, t).max(1e-12) as f64).ln();
        }
        let loss = (loss / targets.len() as f64) as f32;
        self.push(
            Tensor::scalar(loss),
            Op::CrossEntropy {
                logits,
                targets: Rc::new(targets.to_vec()),
            },
            Aux::One(softmax),
            self.requires(logits),
        )
    }

    /// Mean of all elements → scalar node.
    pub fn mean_all(&self, a: Var) -> Var {
        let out = Tensor::scalar(self.val(a).mean());
        self.push(out, Op::MeanAll(a), Aux::None, self.requires(a))
    }

    /// Sum of all elements → scalar node.
    pub fn sum_all(&self, a: Var) -> Var {
        let out = Tensor::scalar(self.val(a).sum());
        self.push(out, Op::SumAll(a), Aux::None, self.requires(a))
    }
}
