//! The training loop with validation-based early stopping.
//!
//! All timing goes through `wr-obs`'s [`Clock`] (the production
//! [`wr_obs::MonotonicClock`] by default, a mock in tests) — the trainer
//! never reads `Instant::now` directly, per wr-check R4. [`fit_observed`]
//! additionally records per-epoch loss/NDCG gauges and step-time /
//! grad-norm histograms and wraps each epoch in a trace span; [`fit`] is
//! the same loop with throwaway telemetry.

use crate::resume::{
    latest_valid_train_checkpoint, save_train_checkpoint, TrainCheckpoint,
};
use crate::{Adam, LrSchedule};
use wr_data::{Batch, Batcher, EvalCase};
use wr_nn::{CheckpointError, Param};
use wr_obs::{Clock, Telemetry};
use wr_tensor::{Rng64, Tensor};

/// Interface every model in the zoo implements.
pub trait SeqRecModel {
    /// Display name (Table III row label).
    fn name(&self) -> String;

    /// All trainable parameters (for counting and snapshotting).
    fn params(&self) -> Vec<Param>;

    /// One optimization step on `batch`; returns the training loss.
    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32;

    /// Score every item for each context → `[batch, n_items]`.
    fn score(&self, contexts: &[&[usize]]) -> Tensor;

    /// Projected item representation matrix `V` (for Fig. 6/7 analyses).
    fn item_representations(&self) -> Tensor;

    /// User representations for the given contexts → `[batch, d]`.
    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor;

    /// Restrict the *training* softmax to a candidate item set (cold-start
    /// protocol: items absent from the training catalog must not receive
    /// gradients as perpetual negatives). Scoring remains over the full
    /// catalog. Default: ignored.
    fn set_train_candidates(&mut self, _candidates: Option<Vec<usize>>) {}

    fn param_count(&self) -> usize {
        self.params().iter().map(Param::numel).sum()
    }
}

impl SeqRecModel for Box<dyn SeqRecModel> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn params(&self) -> Vec<Param> {
        (**self).params()
    }

    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
        (**self).train_step(batch, optimizer, rng)
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        (**self).score(contexts)
    }

    fn item_representations(&self) -> Tensor {
        (**self).item_representations()
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        (**self).user_representations(contexts)
    }

    fn set_train_candidates(&mut self, candidates: Option<Vec<usize>>) {
        (**self).set_train_candidates(candidates)
    }
}

/// Loop hyper-parameters (paper defaults scaled to this codebase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    pub max_epochs: usize,
    pub batch_size: usize,
    pub max_seq: usize,
    /// Early-stopping patience in epochs (paper: 10 on validation N@20).
    pub patience: usize,
    pub eval_batch: usize,
    pub seed: u64,
    /// Evaluate validation every `eval_every` epochs (1 = every epoch).
    pub eval_every: usize,
    /// Optional learning-rate schedule applied before each epoch
    /// (None = keep the optimizer's configured LR).
    pub lr_schedule: Option<LrSchedule>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_epochs: 60,
            batch_size: 128,
            max_seq: 30,
            patience: 10,
            eval_batch: 128,
            seed: 2024,
            eval_every: 1,
            lr_schedule: None,
        }
    }
}

/// Per-epoch measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    pub epoch: usize,
    pub train_loss: f32,
    /// Validation NDCG@20 (None on epochs where eval was skipped).
    pub valid_ndcg: Option<f32>,
    pub seconds: f64,
}

/// Outcome of [`fit`].
#[derive(Debug, Clone)]
pub struct TrainReport {
    pub model_name: String,
    pub epochs: Vec<EpochRecord>,
    pub best_valid_ndcg: f32,
    pub best_epoch: usize,
    pub total_seconds: f64,
    pub param_count: usize,
}

impl TrainReport {
    /// Mean wall-clock seconds per epoch (Table IX's `s/Epoch`).
    pub fn seconds_per_epoch(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.total_seconds / self.epochs.len() as f64
        }
    }
}

/// Train `model` with early stopping on validation NDCG@20, restoring the
/// best parameters before returning. `epoch_hook` runs after each epoch —
/// the Fig. 6/7 analyses collect their per-epoch statistics there.
///
/// Equivalent to [`fit_observed`] with telemetry nobody reads; the loop
/// itself is shared, so instrumented and uninstrumented training execute
/// identical arithmetic.
pub fn fit<M: SeqRecModel>(
    model: &mut M,
    optimizer: &mut Adam,
    train_sequences: Vec<Vec<usize>>,
    validation: &[EvalCase],
    config: TrainConfig,
    epoch_hook: impl FnMut(&M, &EpochRecord),
) -> TrainReport {
    fit_observed(
        model,
        optimizer,
        train_sequences,
        validation,
        config,
        &Telemetry::new(),
        epoch_hook,
    )
}

/// [`fit`] with telemetry: per-epoch `train.loss` / `train.valid_ndcg` /
/// `train.epoch_seconds` gauges, `train.step_ms` and `train.grad_norm`
/// histograms (one sample per optimization step), a `train.epochs`
/// counter, and a `train.epoch` span per epoch on the tracer. All report
/// timing (`EpochRecord::seconds`, `TrainReport::total_seconds`) is read
/// from `telemetry.clock`, so a [`wr_obs::MockClock`] makes the report
/// fully deterministic. Telemetry is write-only: no recorded value feeds
/// the optimization path.
pub fn fit_observed<M: SeqRecModel>(
    model: &mut M,
    optimizer: &mut Adam,
    train_sequences: Vec<Vec<usize>>,
    validation: &[EvalCase],
    config: TrainConfig,
    telemetry: &Telemetry,
    mut epoch_hook: impl FnMut(&M, &EpochRecord),
) -> TrainReport {
    match run_loop(
        model,
        optimizer,
        train_sequences,
        validation,
        config,
        telemetry,
        LoopStart::fresh(config.seed),
        None,
        &mut epoch_hook,
    ) {
        Ok(report) => report,
        // Without a checkpoint policy the loop performs no fallible IO.
        Err(e) => unreachable!("checkpoint-free training cannot fail: {e}"),
    }
}

/// Where and how often [`fit_resumable`] persists its resumable state.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory receiving `train-<epoch>.wrts` generations (created if
    /// absent). Old generations are kept: recovery falls back across them
    /// when the newest is damaged.
    pub dir: std::path::PathBuf,
    /// Checkpoint after every `every`-th epoch (1 = every epoch; the
    /// final epoch is always checkpointed).
    pub every: usize,
}

/// [`fit_observed`] with crash-safe resumption: the loop checkpoints its
/// full state (parameters, best-weights snapshot, Adam moments + step,
/// RNG stream position, early-stopping bookkeeping) to `policy.dir` at
/// epoch boundaries, and on startup restores the newest valid generation
/// found there — continuing **bit-identically** to the uninterrupted run.
/// A kill at any instant costs at most `policy.every` epochs of work.
///
/// Each resume increments the `train.resumes` counter on `telemetry`
/// (created at 0 so the metric is visible even for runs that never
/// resume).
#[allow(clippy::too_many_arguments)]
pub fn fit_resumable<M: SeqRecModel>(
    model: &mut M,
    optimizer: &mut Adam,
    train_sequences: Vec<Vec<usize>>,
    validation: &[EvalCase],
    config: TrainConfig,
    telemetry: &Telemetry,
    policy: &CheckpointPolicy,
    mut epoch_hook: impl FnMut(&M, &EpochRecord),
) -> Result<TrainReport, CheckpointError> {
    std::fs::create_dir_all(&policy.dir)?;
    let resumes = telemetry.registry.counter("train.resumes");
    let params = model.params();
    let start = match latest_valid_train_checkpoint(&policy.dir)? {
        Some((_, cp)) => {
            if cp.params.len() != params.len() {
                return Err(CheckpointError::Mismatch(format!(
                    "checkpoint has {} parameters, model has {}",
                    cp.params.len(),
                    params.len()
                )));
            }
            for (p, t) in params.iter().zip(&cp.params) {
                if t.dims() != p.dims() {
                    return Err(CheckpointError::Mismatch(format!(
                        "parameter {:?}: checkpoint {:?} vs model {:?}",
                        p.name(),
                        t.dims(),
                        p.dims()
                    )));
                }
            }
            for (p, t) in params.iter().zip(&cp.params) {
                p.set(t.clone());
            }
            optimizer
                .import_state(&params, &cp.adam)
                .map_err(CheckpointError::Mismatch)?;
            resumes.inc();
            LoopStart {
                epoch_next: cp.epoch_next,
                rng: Rng64::from_state(cp.rng_state),
                best_snapshot: Some(cp.best_snapshot),
                best_valid: cp.best_valid,
                best_epoch: cp.best_epoch,
                stale: cp.stale,
            }
        }
        None => LoopStart::fresh(config.seed),
    };
    run_loop(
        model,
        optimizer,
        train_sequences,
        validation,
        config,
        telemetry,
        start,
        Some(policy),
        &mut epoch_hook,
    )
}

/// Training-loop entry state: where the epoch counter, RNG stream, and
/// early-stopping bookkeeping begin. Fresh runs start at zero; resumed
/// runs restore every field from a [`TrainCheckpoint`].
struct LoopStart {
    epoch_next: usize,
    rng: Rng64,
    /// `None` = snapshot the model's current parameters at loop entry.
    best_snapshot: Option<Vec<Tensor>>,
    best_valid: f32,
    best_epoch: usize,
    stale: usize,
}

impl LoopStart {
    fn fresh(seed: u64) -> LoopStart {
        LoopStart {
            epoch_next: 0,
            rng: Rng64::seed_from(seed),
            best_snapshot: None,
            best_valid: f32::NEG_INFINITY,
            best_epoch: 0,
            stale: 0,
        }
    }
}

/// The one training loop behind [`fit`], [`fit_observed`], and
/// [`fit_resumable`]: instrumented and resumable variants execute
/// identical arithmetic, differing only in entry state and whether epoch
/// boundaries persist a [`TrainCheckpoint`].
#[allow(clippy::too_many_arguments)]
fn run_loop<M: SeqRecModel>(
    model: &mut M,
    optimizer: &mut Adam,
    train_sequences: Vec<Vec<usize>>,
    validation: &[EvalCase],
    config: TrainConfig,
    telemetry: &Telemetry,
    start: LoopStart,
    checkpoint: Option<&CheckpointPolicy>,
    epoch_hook: &mut impl FnMut(&M, &EpochRecord),
) -> Result<TrainReport, CheckpointError> {
    let mut rng = start.rng;
    let batcher = Batcher::new(train_sequences, config.batch_size, config.max_seq);
    assert!(batcher.n_sequences() > 0, "no trainable sequences");

    let clock: &dyn Clock = &*telemetry.clock;
    let registry = &telemetry.registry;
    let loss_gauge = registry.gauge("train.loss");
    let ndcg_gauge = registry.gauge("train.valid_ndcg");
    let epoch_seconds_gauge = registry.gauge("train.epoch_seconds");
    let epoch_counter = registry.counter("train.epochs");
    let step_ms = registry.histogram("train.step_ms", &wr_obs::Histogram::default_ms_bounds());
    let grad_norm = registry.histogram("train.grad_norm", &grad_norm_bounds());

    let params = model.params();
    let mut best_snapshot: Vec<Tensor> = start
        .best_snapshot
        .unwrap_or_else(|| params.iter().map(Param::get).collect());
    let mut best_valid = start.best_valid;
    let mut best_epoch = start.best_epoch;
    let mut stale = start.stale;
    let mut epochs = Vec::new();
    let start_ns = clock.now_ns();

    for epoch in start.epoch_next..config.max_epochs {
        if let Some(schedule) = config.lr_schedule {
            optimizer.config.lr = schedule.at(epoch);
        }
        let epoch_span = telemetry.tracer.span(format!("epoch{epoch}"), "train");
        let epoch_start_ns = clock.now_ns();
        let mut loss_sum = 0.0f64;
        let mut n_batches = 0usize;
        for batch in batcher.epoch(&mut rng) {
            let step_start_ns = clock.now_ns();
            let loss = model.train_step(&batch, optimizer, &mut rng);
            step_ms.observe(clock.now_ns().saturating_sub(step_start_ns) as f64 / 1e6);
            grad_norm.observe(optimizer.last_grad_norm() as f64);
            debug_assert!(loss.is_finite(), "non-finite training loss at epoch {epoch}");
            loss_sum += loss as f64;
            n_batches += 1;
        }
        let train_loss = (loss_sum / n_batches.max(1) as f64) as f32;

        let valid_ndcg = if !validation.is_empty() && epoch % config.eval_every == 0 {
            Some(validation_ndcg(model, validation, config))
        } else {
            None
        };

        let record = EpochRecord {
            epoch,
            train_loss,
            valid_ndcg,
            seconds: clock.now_ns().saturating_sub(epoch_start_ns) as f64 / 1e9,
        };
        epoch_span.end();
        loss_gauge.set(train_loss as f64);
        if let Some(v) = valid_ndcg {
            ndcg_gauge.set(v as f64);
        }
        epoch_seconds_gauge.set(record.seconds);
        epoch_counter.inc();
        epoch_hook(model, &record);
        epochs.push(record);

        let mut stop_now = false;
        if let Some(v) = valid_ndcg {
            if v > best_valid {
                best_valid = v;
                best_epoch = epoch;
                stale = 0;
                for (snap, p) in best_snapshot.iter_mut().zip(&params) {
                    *snap = p.get();
                }
            } else {
                stale += 1;
                if stale >= config.patience {
                    stop_now = true;
                }
            }
        }

        if let Some(policy) = checkpoint {
            // Persist at the configured cadence, and always at the final
            // epoch (scheduled or early-stopped) so the terminal state is
            // on disk. The RNG state is captured *after* this epoch's
            // draws: a resumed loop continues the exact stream.
            let boundary = (epoch + 1) % policy.every.max(1) == 0;
            if boundary || stop_now || epoch + 1 == config.max_epochs {
                let cp = TrainCheckpoint {
                    epoch_next: epoch + 1,
                    rng_state: rng.state(),
                    params: params.iter().map(Param::get).collect(),
                    best_snapshot: best_snapshot.clone(),
                    adam: optimizer.export_state(&params),
                    best_valid,
                    best_epoch,
                    stale,
                };
                save_train_checkpoint(
                    policy.dir.join(format!("train-{:06}.wrts", epoch + 1)),
                    &cp,
                )?;
            }
        }

        if stop_now {
            break;
        }
    }

    // Restore the best weights.
    if best_valid > f32::NEG_INFINITY {
        for (snap, p) in best_snapshot.iter().zip(&params) {
            p.set(snap.clone());
        }
    }

    Ok(TrainReport {
        model_name: model.name(),
        best_valid_ndcg: best_valid.max(0.0),
        best_epoch,
        total_seconds: clock.now_ns().saturating_sub(start_ns) as f64 / 1e9,
        param_count: model.param_count(),
        epochs,
    })
}

/// Log-spaced histogram bounds for gradient norms (1e-4 … 1e4).
fn grad_norm_bounds() -> Vec<f64> {
    let mut bounds = Vec::new();
    let mut decade = 1e-4;
    for _ in 0..8 {
        for m in [1.0, 3.0] {
            bounds.push(decade * m);
        }
        decade *= 10.0;
    }
    bounds
}

/// NDCG@20 of `model` on validation cases (history-excluded full ranking).
fn validation_ndcg<M: SeqRecModel>(model: &M, cases: &[EvalCase], config: TrainConfig) -> f32 {
    let metrics = wr_eval_shim::evaluate(model, cases, config.eval_batch);
    metrics
}

/// Minimal inline evaluator (full wr-eval integration lives in the harness;
/// the trainer only needs NDCG@20 for early stopping, and keeping this
/// local avoids a circular dev-dependency).
mod wr_eval_shim {
    use super::SeqRecModel;
    use wr_data::EvalCase;

    pub fn evaluate<M: SeqRecModel>(model: &M, cases: &[EvalCase], batch: usize) -> f32 {
        let mut dcg = 0.0f64;
        for chunk in cases.chunks(batch.max(1)) {
            let contexts: Vec<&[usize]> = chunk.iter().map(|c| c.context.as_slice()).collect();
            let scores = model.score(&contexts);
            for (row, case) in chunk.iter().enumerate() {
                let s = scores.row(row);
                let ts = s[case.target];
                let mut rank = 0usize;
                for (i, &v) in s.iter().enumerate() {
                    if i != case.target && !case.context.contains(&i) && v >= ts {
                        rank += 1;
                    }
                }
                if rank < 20 {
                    dcg += 1.0 / ((rank as f64) + 2.0).log2();
                }
            }
        }
        (dcg / cases.len().max(1) as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdamConfig;
    use wr_autograd::Graph;
    use wr_nn::{Embedding, Module, Session};

    /// A deliberately tiny model: average of item embeddings in the context
    /// scored against all item embeddings. Enough to exercise the loop.
    struct ToyModel {
        emb: Embedding,
        n_items: usize,
    }

    impl ToyModel {
        fn new(n_items: usize, seed: u64) -> Self {
            let mut rng = Rng64::seed_from(seed);
            ToyModel {
                emb: Embedding::new(n_items, 8, &mut rng),
                n_items,
            }
        }

        fn user_vec(&self, context: &[usize]) -> Vec<f32> {
            let table = self.emb.table.get();
            let mut acc = vec![0.0f32; 8];
            for &i in context {
                for (a, &b) in acc.iter_mut().zip(table.row(i)) {
                    *a += b;
                }
            }
            for a in &mut acc {
                *a /= context.len().max(1) as f32;
            }
            acc
        }
    }

    impl SeqRecModel for ToyModel {
        fn name(&self) -> String {
            "Toy".into()
        }

        fn params(&self) -> Vec<Param> {
            self.emb.params()
        }

        fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
            let g = Graph::new();
            let mut sess = Session::train(&g, rng.fork());
            // last real item's embedding predicts the target
            let last_rows: Vec<usize> = (0..batch.batch)
                .map(|b| batch.items[b * batch.seq + batch.seq - 1])
                .collect();
            let u = self.emb.forward(&mut sess, &last_rows);
            let table = sess.bind(&self.emb.table);
            let logits = g.matmul(u, g.transpose(table));
            let targets: Vec<usize> = (0..batch.batch)
                .map(|b| {
                    // final target of each sequence
                    let mut t = 0;
                    for (p, &tgt) in batch.loss_positions.iter().zip(&batch.targets) {
                        if p / batch.seq == b {
                            t = tgt;
                        }
                    }
                    t
                })
                .collect();
            let loss = g.cross_entropy(logits, &targets);
            let value = g.value(loss).item();
            g.backward(loss);
            optimizer.step(&g, sess.bindings());
            value
        }

        fn score(&self, contexts: &[&[usize]]) -> Tensor {
            let table = self.emb.table.get();
            let mut out = Tensor::zeros(&[contexts.len(), self.n_items]);
            for (r, ctx) in contexts.iter().enumerate() {
                let u = self.user_vec(ctx);
                for i in 0..self.n_items {
                    out.row_mut(r)[i] = u.iter().zip(table.row(i)).map(|(a, b)| a * b).sum();
                }
            }
            out
        }

        fn item_representations(&self) -> Tensor {
            self.emb.table.get()
        }

        fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
            let mut out = Tensor::zeros(&[contexts.len(), 8]);
            for (r, ctx) in contexts.iter().enumerate() {
                out.row_mut(r).copy_from_slice(&self.user_vec(ctx));
            }
            out
        }
    }

    fn toy_data(n_items: usize, n_users: usize) -> (Vec<Vec<usize>>, Vec<EvalCase>) {
        // Cyclic sequences: item i is followed by (i+1) % n_items.
        let mut train = Vec::new();
        let mut valid = Vec::new();
        for u in 0..n_users {
            let start = u % n_items;
            let seq: Vec<usize> = (0..8).map(|t| (start + t) % n_items).collect();
            valid.push(EvalCase {
                user: u,
                context: seq.clone(),
                target: (start + 8) % n_items,
            });
            train.push(seq);
        }
        (train, valid)
    }

    #[test]
    fn fit_improves_validation_metric() {
        let (train, valid) = toy_data(12, 60);
        let mut model = ToyModel::new(12, 5);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.05,
            ..AdamConfig::default()
        });
        let config = TrainConfig {
            max_epochs: 25,
            batch_size: 16,
            max_seq: 10,
            patience: 25,
            ..TrainConfig::default()
        };
        let report = fit(&mut model, &mut opt, train, &valid, config, |_, _| {});
        assert!(report.best_valid_ndcg > 0.3, "{}", report.best_valid_ndcg);
        assert!(!report.epochs.is_empty());
        // Loss decreased over training.
        let first = report.epochs.first().unwrap().train_loss;
        let last = report.epochs.last().unwrap().train_loss;
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn early_stopping_triggers() {
        let (train, valid) = toy_data(10, 30);
        let mut model = ToyModel::new(10, 6);
        // Zero learning rate: validation can never improve after epoch 0.
        let mut opt = Adam::new(AdamConfig {
            lr: 0.0,
            ..AdamConfig::default()
        });
        let config = TrainConfig {
            max_epochs: 50,
            batch_size: 16,
            max_seq: 10,
            patience: 3,
            ..TrainConfig::default()
        };
        let report = fit(&mut model, &mut opt, train, &valid, config, |_, _| {});
        assert!(
            report.epochs.len() <= 5,
            "expected early stop, ran {} epochs",
            report.epochs.len()
        );
    }

    #[test]
    fn best_weights_are_restored() {
        let (train, valid) = toy_data(10, 40);
        let mut model = ToyModel::new(10, 7);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.05,
            ..AdamConfig::default()
        });
        let config = TrainConfig {
            max_epochs: 10,
            batch_size: 16,
            max_seq: 10,
            patience: 10,
            ..TrainConfig::default()
        };
        let report = fit(&mut model, &mut opt, train, &valid.clone(), config, |_, _| {});
        // Re-evaluating restored weights reproduces the best metric.
        let again = super::wr_eval_shim::evaluate(&model, &valid, 64);
        assert!(
            (again - report.best_valid_ndcg).abs() < 1e-5,
            "restored {again} vs best {}",
            report.best_valid_ndcg
        );
    }

    #[test]
    fn lr_schedule_is_applied_per_epoch() {
        let (train, valid) = toy_data(8, 20);
        let mut model = ToyModel::new(8, 9);
        let mut opt = Adam::new(AdamConfig {
            lr: 123.0, // overwritten by the schedule
            ..AdamConfig::default()
        });
        let config = TrainConfig {
            max_epochs: 3,
            batch_size: 8,
            max_seq: 10,
            patience: 10,
            lr_schedule: Some(crate::LrSchedule::Step {
                lr: 0.4,
                gamma: 0.5,
                every: 1,
            }),
            ..TrainConfig::default()
        };
        fit(&mut model, &mut opt, train, &valid, config, |_, _| {});
        // After epoch 2 the schedule set lr = 0.4 * 0.5^2 = 0.1.
        assert!((opt.config.lr - 0.1).abs() < 1e-6, "lr = {}", opt.config.lr);
    }

    #[test]
    fn fit_observed_records_metrics_with_deterministic_mock_time() {
        use std::sync::Arc;
        use wr_obs::MockClock;

        let (train, valid) = toy_data(8, 20);
        let mut model = ToyModel::new(8, 3);
        let mut opt = Adam::new(AdamConfig::default());
        let config = TrainConfig {
            max_epochs: 3,
            batch_size: 8,
            max_seq: 10,
            patience: 10,
            ..TrainConfig::default()
        };
        // Every clock read advances by exactly 1 ms: epoch/step timings
        // become pure functions of the number of reads.
        let clock = Arc::new(MockClock::with_tick(1_000_000));
        let tel = Telemetry::with_clock(clock);
        let report = fit_observed(&mut model, &mut opt, train, &valid, config, &tel, |_, _| {});

        // 20 sequences / batch 8 → 3 steps per epoch. Per epoch the clock is
        // read: 1 span start + 1 epoch start + 2 per step + 1 epoch end + 1
        // span end = 3 + 2·steps reads ⇒ seconds is identical every epoch.
        assert_eq!(report.epochs.len(), 3);
        let secs: Vec<f64> = report.epochs.iter().map(|e| e.seconds).collect();
        assert!(secs.iter().all(|s| (*s - secs[0]).abs() < 1e-12), "{secs:?}");
        assert!(report.total_seconds > 0.0);

        let snap = tel.registry.snapshot();
        let gauge = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing gauge {name}"))
        };
        assert!((gauge("train.loss") - report.epochs.last().unwrap().train_loss as f64).abs() < 1e-6);
        assert!(gauge("train.valid_ndcg") >= 0.0);
        assert!(gauge("train.epoch_seconds") > 0.0);
        let counters: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert!(counters.contains(&"train.epochs"));
        let steps = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "train.step_ms")
            .map(|(_, h)| h.count)
            .unwrap();
        assert_eq!(steps, 9); // 3 epochs × 3 steps
        let gn = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "train.grad_norm")
            .map(|(_, h)| h.clone())
            .unwrap();
        assert_eq!(gn.count, 9);
        assert!(gn.min > 0.0, "grad norms should be positive, got {}", gn.min);

        // One span per epoch, named and categorized.
        let events = tel.tracer.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "epoch0");
        assert_eq!(events[0].cat, "train");
        assert!(events.iter().all(|e| e.dur_ns > 0));
    }

    #[test]
    fn fit_and_fit_observed_produce_identical_training() {
        let (train, valid) = toy_data(10, 30);
        let config = TrainConfig {
            max_epochs: 4,
            batch_size: 8,
            max_seq: 10,
            patience: 10,
            ..TrainConfig::default()
        };
        let mut m1 = ToyModel::new(10, 13);
        let mut o1 = Adam::new(AdamConfig::default());
        let r1 = fit(&mut m1, &mut o1, train.clone(), &valid, config, |_, _| {});
        let mut m2 = ToyModel::new(10, 13);
        let mut o2 = Adam::new(AdamConfig::default());
        let tel = Telemetry::new();
        let r2 = fit_observed(&mut m2, &mut o2, train, &valid, config, &tel, |_, _| {});
        // Telemetry is write-only: losses and final weights are bit-equal.
        let l1: Vec<u32> = r1.epochs.iter().map(|e| e.train_loss.to_bits()).collect();
        let l2: Vec<u32> = r2.epochs.iter().map(|e| e.train_loss.to_bits()).collect();
        assert_eq!(l1, l2);
        let w1 = m1.emb.table.get();
        let w2 = m2.emb.table.get();
        assert_eq!(w1.data(), w2.data());
    }

    #[test]
    fn hook_sees_every_epoch() {
        let (train, valid) = toy_data(8, 20);
        let mut model = ToyModel::new(8, 8);
        let mut opt = Adam::new(AdamConfig::default());
        let config = TrainConfig {
            max_epochs: 4,
            batch_size: 8,
            max_seq: 10,
            patience: 10,
            ..TrainConfig::default()
        };
        let mut seen = Vec::new();
        let report = fit(&mut model, &mut opt, train, &valid, config, |_, rec| {
            seen.push(rec.epoch);
        });
        assert_eq!(seen, (0..report.epochs.len()).collect::<Vec<_>>());
        assert!(report.seconds_per_epoch() >= 0.0);
        assert_eq!(report.param_count, 8 * 8);
    }
}
