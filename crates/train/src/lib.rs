//! Training infrastructure: Adam, the training loop, early stopping.
//!
//! Models implement [`SeqRecModel`]; [`fit`] drives epochs of shuffled
//! mini-batches, evaluates NDCG@20 on validation after each epoch, applies
//! the paper's early-stopping rule (stop after 10 stagnant epochs), and
//! restores the best parameters.

mod adam;
mod resume;
mod schedule;
mod trainer;

pub use adam::{Adam, AdamConfig, AdamStateExport};
pub use resume::{
    latest_valid_train_checkpoint, load_train_checkpoint, save_train_checkpoint, TrainCheckpoint,
};
pub use schedule::LrSchedule;
pub use trainer::{
    fit, fit_observed, fit_resumable, CheckpointPolicy, EpochRecord, SeqRecModel, TrainConfig,
    TrainReport,
};
