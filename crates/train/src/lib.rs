//! Training infrastructure: Adam, the training loop, early stopping.
//!
//! Models implement [`SeqRecModel`]; [`fit`] drives epochs of shuffled
//! mini-batches, evaluates NDCG@20 on validation after each epoch, applies
//! the paper's early-stopping rule (stop after 10 stagnant epochs), and
//! restores the best parameters.

mod adam;
mod schedule;
mod trainer;

pub use adam::{Adam, AdamConfig};
pub use schedule::LrSchedule;
pub use trainer::{fit, fit_observed, EpochRecord, SeqRecModel, TrainConfig, TrainReport};
