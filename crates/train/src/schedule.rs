//! Learning-rate schedules.
//!
//! The paper tunes a fixed LR per dataset; production training of the same
//! architectures typically adds linear warmup (Transformer stability) and
//! a decay phase. The trainer applies a schedule by mutating the
//! optimizer's LR before each epoch.

/// A learning-rate schedule over epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant LR (the paper's setting).
    Constant { lr: f32 },
    /// Linear warmup from 0 over `warmup` epochs, then constant.
    Warmup { lr: f32, warmup: usize },
    /// Linear warmup, then cosine decay to `floor` by `total` epochs.
    WarmupCosine {
        lr: f32,
        warmup: usize,
        total: usize,
        floor: f32,
    },
    /// Multiply by `gamma` every `every` epochs.
    Step { lr: f32, gamma: f32, every: usize },
}

impl LrSchedule {
    /// Learning rate for `epoch` (0-based).
    pub fn at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Warmup { lr, warmup } => {
                if warmup == 0 || epoch >= warmup {
                    lr
                } else {
                    lr * (epoch + 1) as f32 / warmup as f32
                }
            }
            LrSchedule::WarmupCosine {
                lr,
                warmup,
                total,
                floor,
            } => {
                if warmup > 0 && epoch < warmup {
                    return lr * (epoch + 1) as f32 / warmup as f32;
                }
                if epoch >= total {
                    return floor;
                }
                let progress = (epoch - warmup) as f32 / (total - warmup).max(1) as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                floor + (lr - floor) * cos
            }
            LrSchedule::Step { lr, gamma, every } => {
                let steps = if every == 0 { 0 } else { epoch / every };
                lr * gamma.powi(steps as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 1e-3 };
        assert_eq!(s.at(0), 1e-3);
        assert_eq!(s.at(100), 1e-3);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { lr: 1.0, warmup: 4 };
        assert!((s.at(0) - 0.25).abs() < 1e-6);
        assert!((s.at(1) - 0.5).abs() < 1e-6);
        assert!((s.at(3) - 1.0).abs() < 1e-6);
        assert_eq!(s.at(10), 1.0);
    }

    #[test]
    fn warmup_cosine_decays_to_floor() {
        let s = LrSchedule::WarmupCosine {
            lr: 1.0,
            warmup: 2,
            total: 10,
            floor: 0.1,
        };
        assert!(s.at(0) < s.at(1));
        assert!((s.at(2) - 1.0).abs() < 1e-5, "peak right after warmup");
        assert!(s.at(5) < s.at(2));
        assert!((s.at(10) - 0.1).abs() < 1e-6);
        assert!((s.at(50) - 0.1).abs() < 1e-6);
        // monotone decay after warmup
        for e in 2..9 {
            assert!(s.at(e + 1) <= s.at(e) + 1e-6);
        }
    }

    #[test]
    fn step_decay() {
        let s = LrSchedule::Step {
            lr: 1.0,
            gamma: 0.5,
            every: 3,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(2), 1.0);
        assert_eq!(s.at(3), 0.5);
        assert_eq!(s.at(6), 0.25);
    }

    #[test]
    fn degenerate_configs_are_safe() {
        assert_eq!(LrSchedule::Warmup { lr: 1.0, warmup: 0 }.at(0), 1.0);
        assert_eq!(
            LrSchedule::Step { lr: 1.0, gamma: 0.5, every: 0 }.at(9),
            1.0
        );
    }
}
