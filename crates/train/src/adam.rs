//! Adam optimizer (Kingma & Ba), with RecBole-style L2 weight decay.

use std::collections::BTreeMap;

use wr_autograd::{Graph, Var};
use wr_nn::Param;
use wr_tensor::Tensor;

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// L2 penalty folded into the gradient (`grad += wd * θ`), matching
    /// `torch.optim.Adam(weight_decay=…)` which the paper tunes in
    /// {0, 1e-6, 1e-4}.
    pub weight_decay: f32,
    /// Gradients are clipped to this global L2 norm when finite.
    pub clip_norm: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip_norm: 5.0,
        }
    }
}

struct Slot {
    m: Tensor,
    v: Tensor,
}

/// Adam with state keyed by stable parameter ids, so the same optimizer
/// instance follows parameters across the fresh graph built each step.
pub struct Adam {
    pub config: AdamConfig,
    state: BTreeMap<u64, Slot>,
    step: u64,
    /// Pre-clip global gradient L2 norm of the latest step — telemetry
    /// only (the trainer's grad-norm histogram); never read by the update.
    last_grad_norm: f32,
}

impl Adam {
    pub fn new(config: AdamConfig) -> Self {
        Adam {
            config,
            state: BTreeMap::new(),
            step: 0,
            last_grad_norm: 0.0,
        }
    }

    /// Apply one update from the gradients recorded on `graph` for the
    /// given `(param, var)` bindings. Bindings without a gradient are
    /// skipped (e.g. unused heads).
    pub fn step(&mut self, graph: &Graph, bindings: &[(Param, Var)]) {
        self.step += 1;
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powi(self.step as i32);
        let bias2 = 1.0 - c.beta2.powi(self.step as i32);

        // Global-norm clipping across all gradients of this step.
        let mut sq_sum = 0.0f64;
        let mut grads: Vec<(usize, Tensor)> = Vec::with_capacity(bindings.len());
        for (i, (_, var)) in bindings.iter().enumerate() {
            if let Some(g) = graph.grad(*var) {
                sq_sum += g.data().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
                grads.push((i, g));
            }
        }
        let norm = (sq_sum as f32).sqrt();
        self.last_grad_norm = norm;
        let clip_scale = if norm.is_finite() && norm > c.clip_norm {
            c.clip_norm / norm
        } else {
            1.0
        };

        for (i, mut grad) in grads {
            let param = &bindings[i].0;
            // wr-check: allow(R5) — exact sentinel: 1.0 means "no clipping
            // happened", skipping a full-tensor scale; any other value must
            // scale even if within epsilon of 1.
            if clip_scale != 1.0 {
                grad.scale_(clip_scale);
            }
            if c.weight_decay > 0.0 {
                let value = param.get();
                grad.axpy_(c.weight_decay, &value);
            }
            let slot = self.state.entry(param.id()).or_insert_with(|| Slot {
                m: Tensor::zeros(&grad.dims().to_vec()),
                v: Tensor::zeros(&grad.dims().to_vec()),
            });
            slot.m.scale_(c.beta1);
            slot.m.axpy_(1.0 - c.beta1, &grad);
            slot.v.scale_(c.beta2);
            let g2 = grad.mul(&grad);
            slot.v.axpy_(1.0 - c.beta2, &g2);

            let delta: Vec<f32> = slot
                .m
                .data()
                .iter()
                .zip(slot.v.data())
                .map(|(&m, &v)| {
                    let mhat = m / bias1;
                    let vhat = v / bias2;
                    -c.lr * mhat / (vhat.sqrt() + c.eps)
                })
                .collect();
            let delta = Tensor::from_vec(delta, &grad.dims().to_vec());
            param.update(|t| t.add_assign_(&delta));
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Pre-clip global gradient L2 norm of the most recent [`Adam::step`]
    /// (0.0 before any step). Exposed for the trainer's grad-norm
    /// histogram; the update itself never reads it back.
    pub fn last_grad_norm(&self) -> f32 {
        self.last_grad_norm
    }

    /// Drop all moment state (used when restarting training).
    pub fn reset(&mut self) {
        self.state.clear();
        self.step = 0;
        self.last_grad_norm = 0.0;
    }

    /// Snapshot the optimizer state keyed by parameter *position* in
    /// `params`. Runtime `Param::id`s are assigned per process, so a
    /// checkpoint written by one run must not record them — the position
    /// in a model's deterministic `params()` order is the stable key.
    /// Parameters that never received a gradient export `None`.
    pub fn export_state(&self, params: &[Param]) -> AdamStateExport {
        AdamStateExport {
            step: self.step,
            slots: params
                .iter()
                .map(|p| self.state.get(&p.id()).map(|s| (s.m.clone(), s.v.clone())))
                .collect(),
        }
    }

    /// Restore state exported by [`Adam::export_state`], re-keying each
    /// positional slot to the *current* runtime id of the parameter at
    /// that position. Replaces any existing state.
    pub fn import_state(
        &mut self,
        params: &[Param],
        export: &AdamStateExport,
    ) -> Result<(), String> {
        if params.len() != export.slots.len() {
            return Err(format!(
                "optimizer state has {} slots but model has {} parameters",
                export.slots.len(),
                params.len()
            ));
        }
        for (i, (p, slot)) in params.iter().zip(&export.slots).enumerate() {
            if let Some((m, v)) = slot {
                if m.dims() != p.dims() || v.dims() != p.dims() {
                    return Err(format!(
                        "slot {i} ({:?}): moments {:?}/{:?} vs parameter {:?}",
                        p.name(),
                        m.dims(),
                        v.dims(),
                        p.dims()
                    ));
                }
            }
        }
        self.state.clear();
        self.step = export.step;
        self.last_grad_norm = 0.0;
        for (p, slot) in params.iter().zip(&export.slots) {
            if let Some((m, v)) = slot {
                self.state.insert(
                    p.id(),
                    Slot {
                        m: m.clone(),
                        v: v.clone(),
                    },
                );
            }
        }
        Ok(())
    }
}

/// Optimizer state detached from runtime parameter ids — the wire-safe
/// form produced by [`Adam::export_state`]. `slots[i]` holds the first
/// and second moments of the `i`-th parameter of the model's `params()`
/// order, or `None` if that parameter has not been updated yet.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamStateExport {
    pub step: u64,
    pub slots: Vec<Option<(Tensor, Tensor)>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_nn::Session;
    use wr_tensor::Rng64;

    /// Minimize ‖θ − target‖² and check convergence.
    #[test]
    fn converges_on_quadratic() {
        let target = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let theta = Param::new("theta", Tensor::zeros(&[3]));
        let mut opt = Adam::new(AdamConfig {
            lr: 0.05,
            ..AdamConfig::default()
        });
        for _ in 0..400 {
            let g = Graph::new();
            let mut sess = Session::train(&g, Rng64::seed_from(0));
            let th = sess.bind(&theta);
            let t = g.constant(target.reshape(&[1, 3]));
            let th2 = g.reshape(th, &[1, 3]);
            let d = g.sub(th2, t);
            let loss = g.sum_all(g.mul(d, d));
            g.backward(loss);
            opt.step(&g, sess.bindings());
        }
        let final_theta = theta.get();
        for (a, b) in final_theta.data().iter().zip(target.data()) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        // With zero gradient signal, weight decay alone pulls θ toward 0.
        let theta = Param::new("theta", Tensor::from_slice(&[4.0, -4.0]));
        let mut opt = Adam::new(AdamConfig {
            lr: 0.05,
            weight_decay: 0.1,
            ..AdamConfig::default()
        });
        for _ in 0..200 {
            let g = Graph::new();
            let mut sess = Session::train(&g, Rng64::seed_from(0));
            let th = sess.bind(&theta);
            // loss = 0 * θ — gradient is zero, only decay acts
            let loss = g.scale(g.sum_all(th), 0.0);
            g.backward(loss);
            opt.step(&g, sess.bindings());
        }
        let v = theta.get();
        assert!(v.data()[0].abs() < 1.0, "decay had no effect: {:?}", v.data());
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let theta = Param::new("theta", Tensor::zeros(&[2]));
        let mut opt = Adam::new(AdamConfig {
            lr: 1.0,
            clip_norm: 1.0,
            ..AdamConfig::default()
        });
        let g = Graph::new();
        let mut sess = Session::train(&g, Rng64::seed_from(0));
        let th = sess.bind(&theta);
        let huge = g.constant(Tensor::from_slice(&[1e6, 1e6]));
        let loss = g.sum_all(g.mul(th, huge));
        g.backward(loss);
        opt.step(&g, sess.bindings());
        // First Adam step magnitude is ≤ lr regardless, but state must be finite.
        let v = theta.get();
        assert!(v.non_finite_count() == 0);
        assert!(v.data().iter().all(|x| x.abs() <= 1.1));
    }

    #[test]
    fn export_import_round_trips_across_optimizer_instances() {
        let theta = Param::new("theta", Tensor::from_slice(&[1.0, 2.0]));
        let untouched = Param::new("frozen", Tensor::from_slice(&[5.0]));
        let mut opt = Adam::new(AdamConfig::default());
        // `untouched` is never bound into a graph: no gradient, no slot.
        let run_step = |opt: &mut Adam, theta: &Param| {
            let g = Graph::new();
            let mut sess = Session::train(&g, Rng64::seed_from(0));
            let th = sess.bind(theta);
            let loss = g.sum_all(g.mul(th, th));
            g.backward(loss);
            opt.step(&g, sess.bindings());
        };
        run_step(&mut opt, &theta);
        run_step(&mut opt, &theta);

        let params = vec![theta.clone(), untouched.clone()];
        let export = opt.export_state(&params);
        assert_eq!(export.step, 2);
        assert!(export.slots[0].is_some());
        assert!(export.slots[1].is_none());

        // Import re-keys onto a *different* runtime param (fresh id, same
        // position); the resumed optimizer continues the exact trajectory.
        let theta_b = Param::new("theta", theta.get());
        let params_b = vec![theta_b.clone(), untouched.clone()];
        let mut resumed = Adam::new(AdamConfig::default());
        resumed.import_state(&params_b, &export).unwrap();
        run_step(&mut opt, &theta);
        run_step(&mut resumed, &theta_b);
        assert_eq!(theta.get().data(), theta_b.get().data());
        assert_eq!(opt.steps(), resumed.steps());
    }

    #[test]
    fn import_rejects_mismatched_state() {
        let theta = Param::new("theta", Tensor::from_slice(&[1.0, 2.0]));
        let export = AdamStateExport {
            step: 3,
            slots: vec![Some((Tensor::zeros(&[3]), Tensor::zeros(&[3])))],
        };
        let mut opt = Adam::new(AdamConfig::default());
        assert!(opt.import_state(&[theta.clone()], &export).is_err());
        let short = AdamStateExport {
            step: 3,
            slots: vec![],
        };
        assert!(opt.import_state(&[theta], &short).is_err());
    }

    #[test]
    fn state_follows_params_across_graphs() {
        let theta = Param::new("theta", Tensor::from_slice(&[1.0]));
        let mut opt = Adam::new(AdamConfig::default());
        for _ in 0..3 {
            let g = Graph::new();
            let mut sess = Session::train(&g, Rng64::seed_from(0));
            let th = sess.bind(&theta);
            let loss = g.sum_all(th);
            g.backward(loss);
            opt.step(&g, sess.bindings());
        }
        assert_eq!(opt.steps(), 3);
        assert_eq!(opt.state.len(), 1);
        opt.reset();
        assert_eq!(opt.steps(), 0);
    }
}
