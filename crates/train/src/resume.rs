//! WRTS v1 train-state checkpoints: everything a killed training run
//! needs to continue **bit-identically**.
//!
//! Format (`WRTS` v1, little-endian, CRC-sealed, atomic on disk):
//!
//! ```text
//! magic "WRTS" | u32 version=1
//! u64 epoch_next | u64 rng_state[4] | u64 adam_step
//! u32 best_valid (f32 bits) | u64 best_epoch | u64 stale
//! u32 n_params
//! per param: tensor value | tensor best_snapshot
//!            u8 has_moments | [tensor m | tensor v]
//! footer:    u32 crc32(everything above) | magic "STRW"
//! tensor:    u32 rank | u64 dims… | u64 numel | f32 values…
//! ```
//!
//! The captured state is deliberately wider than "the weights": resuming
//! mid-run must replay the exact arithmetic an uninterrupted run would
//! have executed, which requires the RNG stream position (batch shuffles
//! and dropout draws), the Adam moments and step count (bias correction
//! depends on it), and the early-stopping bookkeeping (best snapshot /
//! best metric / staleness), all keyed by parameter *position* — runtime
//! `Param::id`s are process-local and never serialized.
//!
//! Persistence goes through `wr_fault::write_atomic`, and loads verify
//! the CRC footer before decoding, so a crash mid-save or a flipped bit
//! surfaces as [`CheckpointError::Corrupt`] and recovery falls back to
//! the previous generation via [`latest_valid_train_checkpoint`].

use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};

use crate::AdamStateExport;
use wr_fault::{crc32, write_atomic};
use wr_nn::CheckpointError;
use wr_tensor::Tensor;

const MAGIC: &[u8; 4] = b"WRTS";
const FOOTER_MAGIC: &[u8; 4] = b"STRW";
const VERSION: u32 = 1;
const FOOTER_LEN: usize = 8;

/// A resumable snapshot of the training loop, taken at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// First epoch the resumed loop should run.
    pub epoch_next: usize,
    /// xoshiro256++ state captured *after* the checkpointed epoch, so the
    /// resumed loop draws the same shuffles and dropout masks the
    /// uninterrupted run would have.
    pub rng_state: [u64; 4],
    /// Current parameter values, in `params()` order.
    pub params: Vec<Tensor>,
    /// Early-stopping best-weights snapshot, in `params()` order.
    pub best_snapshot: Vec<Tensor>,
    /// Optimizer moments + step count, positional.
    pub adam: AdamStateExport,
    /// Best validation NDCG seen so far (`-inf` before any eval).
    pub best_valid: f32,
    pub best_epoch: usize,
    /// Stagnant-epoch count toward the patience limit.
    pub stale: usize,
}

fn put_tensor(buf: &mut Vec<u8>, t: &Tensor) {
    buf.extend_from_slice(&(t.rank() as u32).to_le_bytes());
    for &d in t.dims() {
        buf.extend_from_slice(&(d as u64).to_le_bytes());
    }
    buf.extend_from_slice(&(t.numel() as u64).to_le_bytes());
    for &v in t.data() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian reader mirroring the one in `wr_nn::checkpoint`; every
/// getter is fallible because checkpoint bytes are untrusted input.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() < n {
            return Err(CheckpointError::Format(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let b = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    fn get_tensor(&mut self, what: &str) -> Result<Tensor, CheckpointError> {
        let rank = self.get_u32(what)? as usize;
        if rank > 32 {
            return Err(CheckpointError::Format(format!("{what}: absurd rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(self.get_u64(what)? as usize);
        }
        let numel = self.get_u64(what)? as usize;
        let expected: Option<usize> = dims.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d));
        if expected != Some(numel) {
            return Err(CheckpointError::Format(format!(
                "{what}: {numel} values vs dims {dims:?}"
            )));
        }
        let byte_len = numel
            .checked_mul(4)
            .ok_or_else(|| CheckpointError::Format(format!("{what}: value count overflows")))?;
        let raw = self.take(byte_len, what)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Tensor::try_from_vec(data, &dims).map_err(|e| CheckpointError::Format(e.to_string()))
    }
}

fn encode(cp: &TrainCheckpoint) -> Result<Vec<u8>, CheckpointError> {
    if cp.params.len() != cp.best_snapshot.len() || cp.params.len() != cp.adam.slots.len() {
        return Err(CheckpointError::Mismatch(format!(
            "inconsistent checkpoint: {} params, {} snapshots, {} optimizer slots",
            cp.params.len(),
            cp.best_snapshot.len(),
            cp.adam.slots.len()
        )));
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(cp.epoch_next as u64).to_le_bytes());
    for s in cp.rng_state {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    buf.extend_from_slice(&cp.adam.step.to_le_bytes());
    buf.extend_from_slice(&cp.best_valid.to_bits().to_le_bytes());
    buf.extend_from_slice(&(cp.best_epoch as u64).to_le_bytes());
    buf.extend_from_slice(&(cp.stale as u64).to_le_bytes());
    buf.extend_from_slice(&(cp.params.len() as u32).to_le_bytes());
    for i in 0..cp.params.len() {
        put_tensor(&mut buf, &cp.params[i]);
        put_tensor(&mut buf, &cp.best_snapshot[i]);
        match &cp.adam.slots[i] {
            Some((m, v)) => {
                buf.push(1);
                put_tensor(&mut buf, m);
                put_tensor(&mut buf, v);
            }
            None => buf.push(0),
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(FOOTER_MAGIC);
    Ok(buf)
}

fn decode(raw: &[u8]) -> Result<TrainCheckpoint, CheckpointError> {
    if raw.len() < FOOTER_LEN + 4 {
        return Err(CheckpointError::Corrupt(format!(
            "file too short for a sealed train checkpoint ({} bytes)",
            raw.len()
        )));
    }
    let (payload, footer) = raw.split_at(raw.len() - FOOTER_LEN);
    if &footer[4..] != FOOTER_MAGIC {
        return Err(CheckpointError::Corrupt("missing integrity footer".into()));
    }
    let stored = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
    let actual = crc32(payload);
    if stored != actual {
        return Err(CheckpointError::Corrupt(format!(
            "crc mismatch: footer {stored:08x} vs payload {actual:08x}"
        )));
    }

    let mut cur = Cursor { buf: payload };
    if cur.take(4, "magic")? != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = cur.get_u32("version")?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!("unsupported version {version}")));
    }
    let epoch_next = cur.get_u64("epoch_next")? as usize;
    let mut rng_state = [0u64; 4];
    for s in &mut rng_state {
        *s = cur.get_u64("rng state")?;
    }
    let adam_step = cur.get_u64("adam step")?;
    let best_valid = f32::from_bits(cur.get_u32("best_valid")?);
    let best_epoch = cur.get_u64("best_epoch")? as usize;
    let stale = cur.get_u64("stale")? as usize;
    let n = cur.get_u32("param count")? as usize;
    let mut params = Vec::with_capacity(n);
    let mut best_snapshot = Vec::with_capacity(n);
    let mut slots = Vec::with_capacity(n);
    for i in 0..n {
        params.push(cur.get_tensor(&format!("param {i}"))?);
        best_snapshot.push(cur.get_tensor(&format!("snapshot {i}"))?);
        let has = cur.take(1, "moment flag")?[0];
        slots.push(match has {
            0 => None,
            1 => Some((
                cur.get_tensor(&format!("moment m {i}"))?,
                cur.get_tensor(&format!("moment v {i}"))?,
            )),
            other => {
                return Err(CheckpointError::Format(format!(
                    "param {i}: invalid moment flag {other}"
                )))
            }
        });
    }
    Ok(TrainCheckpoint {
        epoch_next,
        rng_state,
        params,
        best_snapshot,
        adam: AdamStateExport {
            step: adam_step,
            slots,
        },
        best_valid,
        best_epoch,
        stale,
    })
}

/// Persist a train checkpoint crash-safely (CRC footer, temp → fsync →
/// atomic rename).
pub fn save_train_checkpoint(
    path: impl AsRef<Path>,
    cp: &TrainCheckpoint,
) -> Result<(), CheckpointError> {
    let bytes = encode(cp)?;
    write_atomic(path, &bytes)?;
    Ok(())
}

/// Load and fully validate a train checkpoint. A torn or bit-flipped
/// file is rejected with [`CheckpointError::Corrupt`] before decoding.
pub fn load_train_checkpoint(path: impl AsRef<Path>) -> Result<TrainCheckpoint, CheckpointError> {
    let mut input = File::open(path)?;
    let mut raw = Vec::new();
    input.read_to_end(&mut raw)?;
    decode(&raw)
}

/// Scan `dir` for `*.wrts` checkpoints and return the newest one that
/// fully validates, with its path — or `None` when no generation
/// survives. Filename order is generation order (writers zero-pad the
/// epoch counter), mirroring `wr_nn::latest_valid_checkpoint`.
pub fn latest_valid_train_checkpoint(
    dir: impl AsRef<Path>,
) -> Result<Option<(PathBuf, TrainCheckpoint)>, CheckpointError> {
    let mut candidates: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir.as_ref())? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("wrts") {
            candidates.push(path);
        }
    }
    candidates.sort();
    for path in candidates.into_iter().rev() {
        if let Ok(cp) = load_train_checkpoint(&path) {
            return Ok(Some((path, cp)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wr_tensor::Rng64;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wrts_test_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(seed: u64, epoch_next: usize) -> TrainCheckpoint {
        let mut rng = Rng64::seed_from(seed);
        let params = vec![Tensor::randn(&[3, 2], &mut rng), Tensor::randn(&[2], &mut rng)];
        let best_snapshot = params.iter().map(|t| t.clone()).collect();
        let slots = vec![
            Some((Tensor::randn(&[3, 2], &mut rng), Tensor::randn(&[3, 2], &mut rng))),
            None,
        ];
        TrainCheckpoint {
            epoch_next,
            rng_state: rng.state(),
            params,
            best_snapshot,
            adam: AdamStateExport {
                step: 17,
                slots,
            },
            best_valid: 0.31415,
            best_epoch: epoch_next.saturating_sub(1),
            stale: 2,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("train-000004.wrts");
        let cp = sample(1, 4);
        save_train_checkpoint(&path, &cp).unwrap();
        let back = load_train_checkpoint(&path).unwrap();
        assert_eq!(back, cp);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn negative_infinity_best_valid_survives() {
        // Before the first validation eval, best_valid is -inf; the f32
        // bit-pattern round trip must preserve it exactly.
        let dir = tmp_dir("neginf");
        let path = dir.join("train-000001.wrts");
        let mut cp = sample(2, 1);
        cp.best_valid = f32::NEG_INFINITY;
        save_train_checkpoint(&path, &cp).unwrap();
        let back = load_train_checkpoint(&path).unwrap();
        assert_eq!(back.best_valid.to_bits(), f32::NEG_INFINITY.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_and_bit_flip_is_rejected() {
        let dir = tmp_dir("sweep");
        let path = dir.join("train-000002.wrts");
        save_train_checkpoint(&path, &sample(3, 2)).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(load_train_checkpoint(&path).is_err(), "cut {cut} accepted");
        }
        for byte in (0..clean.len()).step_by(11) {
            let mut bad = clean.clone();
            bad[byte] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(load_train_checkpoint(&path).is_err(), "flip {byte} accepted");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_valid_falls_back_across_generations() {
        let dir = tmp_dir("fallback");
        for e in 1..=3usize {
            save_train_checkpoint(dir.join(format!("train-{e:06}.wrts")), &sample(e as u64, e))
                .unwrap();
        }
        let (path, cp) = latest_valid_train_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(path, dir.join("train-000003.wrts"));
        assert_eq!(cp.epoch_next, 3);

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (path, cp) = latest_valid_train_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(path, dir.join("train-000002.wrts"));
        assert_eq!(cp.epoch_next, 2);

        std::fs::remove_file(dir.join("train-000001.wrts")).unwrap();
        std::fs::write(dir.join("train-000002.wrts"), b"shredded").unwrap();
        std::fs::write(dir.join("train-000003.wrts"), b"also shredded").unwrap();
        assert!(latest_valid_train_checkpoint(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
