//! Crash-resume differential: training 4 epochs straight must be
//! **bit-identical** to training 2 epochs, dying, and resuming for the
//! remaining 2 from the on-disk checkpoint. Run under both `WR_THREADS=1`
//! and `WR_THREADS=8` by the tier-1 harness; the checkpoint state is a
//! pure function of the training arithmetic, so thread count must not
//! matter.

use wr_data::Batch;
use wr_nn::{Embedding, Module, Param, Session};
use wr_tensor::{Rng64, Tensor};
use wr_train::{
    fit, fit_resumable, Adam, AdamConfig, CheckpointPolicy, SeqRecModel, TrainConfig,
};

/// Minimal sequence model: last item's embedding scored against the
/// table. Enough moving parts (embedding gradients, Adam moments, RNG
/// stream) to catch any state the checkpoint fails to capture.
struct ToyModel {
    emb: Embedding,
    n_items: usize,
}

impl ToyModel {
    fn new(n_items: usize, seed: u64) -> Self {
        let mut rng = Rng64::seed_from(seed);
        ToyModel {
            emb: Embedding::new(n_items, 8, &mut rng),
            n_items,
        }
    }

    fn user_vec(&self, context: &[usize]) -> Vec<f32> {
        let table = self.emb.table.get();
        let mut acc = vec![0.0f32; 8];
        for &i in context {
            for (a, &b) in acc.iter_mut().zip(table.row(i)) {
                *a += b;
            }
        }
        for a in &mut acc {
            *a /= context.len().max(1) as f32;
        }
        acc
    }
}

impl SeqRecModel for ToyModel {
    fn name(&self) -> String {
        "ResumeToy".into()
    }

    fn params(&self) -> Vec<Param> {
        self.emb.params()
    }

    fn train_step(&mut self, batch: &Batch, optimizer: &mut Adam, rng: &mut Rng64) -> f32 {
        let g = wr_autograd::Graph::new();
        let mut sess = Session::train(&g, rng.fork());
        let last_rows: Vec<usize> = (0..batch.batch)
            .map(|b| batch.items[b * batch.seq + batch.seq - 1])
            .collect();
        let u = self.emb.forward(&mut sess, &last_rows);
        let table = sess.bind(&self.emb.table);
        let logits = g.matmul(u, g.transpose(table));
        let targets: Vec<usize> = (0..batch.batch)
            .map(|b| {
                let mut t = 0;
                for (p, &tgt) in batch.loss_positions.iter().zip(&batch.targets) {
                    if p / batch.seq == b {
                        t = tgt;
                    }
                }
                t
            })
            .collect();
        let loss = g.cross_entropy(logits, &targets);
        let value = g.value(loss).item();
        g.backward(loss);
        optimizer.step(&g, sess.bindings());
        value
    }

    fn score(&self, contexts: &[&[usize]]) -> Tensor {
        let table = self.emb.table.get();
        let mut out = Tensor::zeros(&[contexts.len(), self.n_items]);
        for (r, ctx) in contexts.iter().enumerate() {
            let u = self.user_vec(ctx);
            for i in 0..self.n_items {
                out.row_mut(r)[i] = u.iter().zip(table.row(i)).map(|(a, b)| a * b).sum();
            }
        }
        out
    }

    fn item_representations(&self) -> Tensor {
        self.emb.table.get()
    }

    fn user_representations(&self, contexts: &[&[usize]]) -> Tensor {
        let mut out = Tensor::zeros(&[contexts.len(), 8]);
        for (r, ctx) in contexts.iter().enumerate() {
            out.row_mut(r).copy_from_slice(&self.user_vec(ctx));
        }
        out
    }
}

fn toy_data(n_items: usize, n_users: usize) -> (Vec<Vec<usize>>, Vec<wr_data::EvalCase>) {
    let mut train = Vec::new();
    let mut valid = Vec::new();
    for u in 0..n_users {
        let start = u % n_items;
        let seq: Vec<usize> = (0..8).map(|t| (start + t) % n_items).collect();
        valid.push(wr_data::EvalCase {
            user: u,
            context: seq.clone(),
            target: (start + 8) % n_items,
        });
        train.push(seq);
    }
    (train, valid)
}

fn test_config(max_epochs: usize) -> TrainConfig {
    TrainConfig {
        max_epochs,
        batch_size: 16,
        max_seq: 10,
        patience: 100, // no early stop: the epoch count is the variable
        ..TrainConfig::default()
    }
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wr_resume_diff_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn param_bits(model: &ToyModel) -> Vec<Vec<u32>> {
    model
        .params()
        .iter()
        .map(|p| p.get().data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn kill_and_resume_is_bit_identical_to_straight_run() {
    let (train, valid) = toy_data(12, 60);

    // Straight 4-epoch run, no checkpointing at all.
    let mut straight = ToyModel::new(12, 5);
    let mut opt_s = Adam::new(AdamConfig { lr: 0.05, ..AdamConfig::default() });
    let report_s = fit(
        &mut straight,
        &mut opt_s,
        train.clone(),
        &valid,
        test_config(4),
        |_, _| {},
    );

    // Interrupted run: 2 epochs, then the process "dies" (we drop the
    // model and optimizer), then a fresh process resumes to epoch 4.
    let dir = tmp_dir("kill_resume");
    let policy = CheckpointPolicy { dir: dir.clone(), every: 1 };
    {
        let mut first = ToyModel::new(12, 5);
        let mut opt = Adam::new(AdamConfig { lr: 0.05, ..AdamConfig::default() });
        let tel = wr_obs::Telemetry::new();
        fit_resumable(
            &mut first,
            &mut opt,
            train.clone(),
            &valid,
            test_config(2),
            &tel,
            &policy,
            |_, _| {},
        )
        .unwrap();
    }
    // The "restarted process": same construction seed, but every piece of
    // state must come from the checkpoint, not from this init.
    let mut resumed = ToyModel::new(12, 5);
    let mut opt_r = Adam::new(AdamConfig { lr: 0.05, ..AdamConfig::default() });
    let tel = wr_obs::Telemetry::new();
    let report_r = fit_resumable(
        &mut resumed,
        &mut opt_r,
        train.clone(),
        &valid,
        test_config(4),
        &tel,
        &policy,
        |_, _| {},
    )
    .unwrap();

    assert_eq!(
        param_bits(&straight),
        param_bits(&resumed),
        "kill-and-resume diverged from the uninterrupted run"
    );
    assert_eq!(opt_s.steps(), opt_r.steps(), "optimizer step counts differ");
    assert_eq!(
        report_s.best_valid_ndcg.to_bits(),
        report_r.best_valid_ndcg.to_bits()
    );
    // The resumed report covers only the epochs it actually ran.
    assert_eq!(report_r.epochs.len(), 2);
    assert_eq!(report_r.epochs[0].epoch, 2);

    // Exactly one resume happened, and it was counted.
    let snap = tel.registry.snapshot();
    let resumes = snap
        .counters
        .iter()
        .find(|(n, _)| n == "train.resumes")
        .map(|(_, v)| *v)
        .expect("train.resumes counter must exist");
    assert_eq!(resumes, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_survives_a_torn_newest_checkpoint() {
    let (train, valid) = toy_data(10, 40);
    let dir = tmp_dir("torn_newest");
    let policy = CheckpointPolicy { dir: dir.clone(), every: 1 };
    {
        let mut m = ToyModel::new(10, 7);
        let mut opt = Adam::new(AdamConfig::default());
        let tel = wr_obs::Telemetry::new();
        fit_resumable(&mut m, &mut opt, train.clone(), &valid, test_config(3), &tel, &policy, |_, _| {})
            .unwrap();
    }
    // Simulate a crash mid-save of generation 3: truncate it.
    let newest = dir.join("train-000003.wrts");
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

    // Resume falls back to generation 2 and continues from epoch 2.
    let mut m = ToyModel::new(10, 7);
    let mut opt = Adam::new(AdamConfig::default());
    let tel = wr_obs::Telemetry::new();
    let report = fit_resumable(
        &mut m,
        &mut opt,
        train,
        &valid,
        test_config(4),
        &tel,
        &policy,
        |_, _| {},
    )
    .unwrap();
    assert_eq!(report.epochs.first().map(|e| e.epoch), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointing_does_not_perturb_training_arithmetic() {
    let (train, valid) = toy_data(8, 24);
    let mut plain = ToyModel::new(8, 3);
    let mut opt_p = Adam::new(AdamConfig::default());
    fit(&mut plain, &mut opt_p, train.clone(), &valid, test_config(3), |_, _| {});

    let dir = tmp_dir("no_perturb");
    let mut ckpt = ToyModel::new(8, 3);
    let mut opt_c = Adam::new(AdamConfig::default());
    let tel = wr_obs::Telemetry::new();
    fit_resumable(
        &mut ckpt,
        &mut opt_c,
        train,
        &valid,
        test_config(3),
        &tel,
        &CheckpointPolicy { dir: dir.clone(), every: 2 },
        |_, _| {},
    )
    .unwrap();
    assert_eq!(param_bits(&plain), param_bits(&ckpt));
    // every=2 over 3 epochs → generations at epoch 2 (cadence) and 3 (final).
    assert!(dir.join("train-000002.wrts").exists());
    assert!(dir.join("train-000003.wrts").exists());
    assert!(!dir.join("train-000001.wrts").exists());
    std::fs::remove_dir_all(&dir).ok();
}
