#!/usr/bin/env bash
# Tier-1 gate: warning-free release build, the wr-check static-analysis
# pass, the full test suite, and the same suite pinned to one thread
# (WR_THREADS=1 exercises the pool's sequential fallback — the path every
# parallel primitive must match bit-for-bit).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== check: cargo build --release (-D warnings) =="
RUSTFLAGS="-D warnings" cargo build --release --workspace

# Semantic rules (R6–R8) gate against the committed suppression budget in
# check_baseline.json: any unsuppressed finding fails, and the justified
# suppression count can only go down. After *removing* suppressions,
# shrink the budget with `./target/release/wr-check --write-baseline`
# (it refuses to raise any count).
echo "== check: wr-check static analysis (--ratchet) =="
./target/release/wr-check --ratchet

echo "== check: cargo test (default threads) =="
cargo test --workspace -q

echo "== check: cargo test (WR_THREADS=1) =="
WR_THREADS=1 cargo test --workspace -q

# The serving crate's differential suite is the determinism gate for the
# online path (batched == naive scorer, thread-count-independent); run it
# explicitly under both pool configurations even though the workspace
# passes above, so a future filtered/partial workspace run can't silently
# drop it.
echo "== check: serve suites (default threads) =="
cargo test -p wr-serve -q

echo "== check: serve suites (WR_THREADS=1) =="
WR_THREADS=1 cargo test -p wr-serve -q

echo "== check: serve-bench smoke replay =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/serve-bench --scale 0.05 --epochs 1 --queries 256 \
    --batch 32 --k 10 --check-naive 64 \
    --checkpoint "$smoke_dir/smoke.wrck" --out "$smoke_dir/report.json" \
    --trace-out "$smoke_dir/trace.json" --metrics-out "$smoke_dir/metrics.json"
grep -q '"p50_ms"' "$smoke_dir/report.json"
grep -q '"p95_ms"' "$smoke_dir/report.json"
grep -q '"p99_ms"' "$smoke_dir/report.json"
grep -q '"qps"' "$smoke_dir/report.json"
echo "   serve-bench report ok: $(cat "$smoke_dir/report.json" | head -c 120)…"

# Telemetry exports: the trace must be Chrome trace_event JSON (the binary
# shape-validates before writing; assert the top-level key here too), and
# the metrics snapshot must carry the serve queue-depth gauge plus the
# whitening condition-number diagnostics.
echo "== check: serve-bench telemetry exports =="
grep -q '"traceEvents"' "$smoke_dir/trace.json"
grep -q '"ph":"X"' "$smoke_dir/trace.json"
grep -q '"serve.queue_depth"' "$smoke_dir/metrics.json"
grep -q '"whiten.pre.condition_number"' "$smoke_dir/metrics.json"
grep -q '"whiten.post.condition_number"' "$smoke_dir/metrics.json"
grep -q '"serve.latency_ms"' "$smoke_dir/metrics.json"
# The fault-tolerance surface is exported even on a clean run (at zero).
grep -q '"fault.injected"' "$smoke_dir/metrics.json"
grep -q '"serve.rejected_overload"' "$smoke_dir/metrics.json"
grep -q '"serve.quarantined_rows"' "$smoke_dir/metrics.json"
grep -q '"serve.retries"' "$smoke_dir/metrics.json"
grep -q '"train.resumes"' "$smoke_dir/metrics.json"
echo "   trace + metrics ok: $(wc -c < "$smoke_dir/trace.json") / $(wc -c < "$smoke_dir/metrics.json") bytes"

# ANN smoke: replay the same fixture (shared checkpoint — identical
# weights) through the IVF scorer at full probe. nprobe defaults to nlist,
# where the index must be *bit-identical* to the dense scorer: the in-run
# --check-naive differential must pass and the replay top1_checksum must
# equal the exact run's, and the serve.ann.* counters must show the scan
# actually went through the inverted lists.
echo "== check: serve-bench ANN smoke (full-probe == exact) =="
./target/release/serve-bench --scale 0.05 --epochs 1 --queries 256 \
    --batch 32 --k 10 --check-naive 64 \
    --checkpoint "$smoke_dir/smoke.wrck" \
    --ann-nlist 16 --ann-index "$smoke_dir/ivf.wriv" \
    --out "$smoke_dir/ann-report.json" --metrics-out "$smoke_dir/ann-metrics.json"
exact_sum="$(grep -Eo '"top1_checksum":"[0-9a-f]+"' "$smoke_dir/report.json")"
ann_sum="$(grep -Eo '"top1_checksum":"[0-9a-f]+"' "$smoke_dir/ann-report.json")"
[ -n "$exact_sum" ] && [ "$exact_sum" = "$ann_sum" ] \
    || { echo "   ANN full-probe checksum diverged: $exact_sum vs $ann_sum"; exit 1; }
grep -Eq '"serve\.ann\.rows_scanned":[1-9]' "$smoke_dir/ann-metrics.json"
grep -Eq '"serve\.ann\.lists_probed":[1-9]' "$smoke_dir/ann-metrics.json"
test -s "$smoke_dir/ivf.wriv"
echo "   ann ok: $ann_sum $(grep -Eo '"serve\.ann\.rows_scanned":[0-9]+' "$smoke_dir/ann-metrics.json")"

# Chaos smoke: replay the same fixture under an armed fault schedule. The
# binary must exit cleanly (recovering via quarantine/retry/isolation, no
# --check-naive here — degraded answers intentionally differ) and the
# metrics export must show nonzero injected faults and a recovery path
# that actually fired.
echo "== check: serve-bench chaos smoke (WR_FAULT_SEED) =="
WR_FAULT_SEED=20240613 ./target/release/serve-bench --scale 0.05 --epochs 1 \
    --queries 256 --batch 32 --k 10 \
    --checkpoint "$smoke_dir/smoke.wrck" --out "$smoke_dir/chaos-report.json" \
    --metrics-out "$smoke_dir/chaos-metrics.json"
grep -q '"qps"' "$smoke_dir/chaos-report.json"
grep -Eq '"fault\.injected":[1-9]' "$smoke_dir/chaos-metrics.json"
grep -Eq '"serve\.(quarantined_rows|retries)":[1-9]' "$smoke_dir/chaos-metrics.json"
echo "   chaos ok: $(grep -Eo '"(fault\.injected|serve\.quarantined_rows|serve\.retries)":[0-9]+' "$smoke_dir/chaos-metrics.json" | tr '\n' ' ')"

# Gateway smoke: replay a Zipf trace through the sharded gateway, reusing
# the same checkpoint fixture. A healthy 2-shard partitioned gateway must
# report the same top1_checksum as a 1-shard gateway (the single-engine
# degenerate case) — the cross-binary face of the differential suite —
# and the in-binary --check-single differential must pass. The metrics
# export must carry nonzero gateway.* traffic counters.
echo "== check: gateway-bench smoke (2-shard == 1-shard checksum) =="
./target/release/gateway-bench --scale 0.05 --epochs 1 --queries 256 \
    --batch 32 --k 10 --shards 1 \
    --checkpoint "$smoke_dir/smoke.wrck" --out "$smoke_dir/gw1-report.json"
./target/release/gateway-bench --scale 0.05 --epochs 1 --queries 256 \
    --batch 32 --k 10 --shards 2 --check-single 64 \
    --checkpoint "$smoke_dir/smoke.wrck" --out "$smoke_dir/gw2-report.json" \
    --metrics-out "$smoke_dir/gw-metrics.json"
gw1_sum="$(grep -Eo '"top1_checksum":"[0-9a-f]+"' "$smoke_dir/gw1-report.json")"
gw2_sum="$(grep -Eo '"top1_checksum":"[0-9a-f]+"' "$smoke_dir/gw2-report.json")"
[ -n "$gw1_sum" ] && [ "$gw1_sum" = "$gw2_sum" ] \
    || { echo "   gateway shard-count checksum diverged: $gw1_sum vs $gw2_sum"; exit 1; }
grep -q '"p50_ms"' "$smoke_dir/gw2-report.json"
grep -q '"p99_ms"' "$smoke_dir/gw2-report.json"
grep -Eq '"gateway\.requests":[1-9]' "$smoke_dir/gw-metrics.json"
grep -Eq '"gateway\.fanout_calls":[1-9]' "$smoke_dir/gw-metrics.json"
grep -q '"gateway.latency_ms"' "$smoke_dir/gw-metrics.json"
grep -q '"gateway.degraded_responses"' "$smoke_dir/gw-metrics.json"
echo "   gateway ok: $gw1_sum == $gw2_sum"

# Gateway chaos smoke: same fixture, one shard poisoned. The replay must
# exit cleanly (survivor shards keep answering; the victim degrades the
# responses it loses) with nonzero injected faults in the export, and the
# armed schedule must export as a sealed wr-faultlog/v1 artifact so the
# run's exact injections travel with its bench JSON.
echo "== check: gateway-bench chaos smoke (one shard poisoned) =="
WR_FAULT_SEED=20240613 ./target/release/gateway-bench --scale 0.05 --epochs 1 \
    --queries 256 --batch 32 --k 10 --shards 3 --poison-shard 1 \
    --checkpoint "$smoke_dir/smoke.wrck" --out "$smoke_dir/gw-chaos-report.json" \
    --metrics-out "$smoke_dir/gw-chaos-metrics.json" \
    --fault-log-out "$smoke_dir/gw-faults.jsonl"
grep -q '"qps"' "$smoke_dir/gw-chaos-report.json"
grep -Eq '"fault\.injected":[1-9]' "$smoke_dir/gw-chaos-metrics.json"
grep -Eq '"serve\.(quarantined_rows|retries)":[1-9]' "$smoke_dir/gw-chaos-metrics.json"
grep -q '"format":"wr-faultlog/v1"' "$smoke_dir/gw-faults.jsonl"
grep -Eq '"records":[1-9]' "$smoke_dir/gw-faults.jsonl"
grep -q '^#crc32:' "$smoke_dir/gw-faults.jsonl"
echo "   gateway chaos ok: $(grep -Eo '"(fault\.injected|gateway\.degraded_responses)":[0-9]+' "$smoke_dir/gw-chaos-metrics.json" | tr '\n' ' ')"

# Replica failover smoke: back every window with 2 replicas and then
# permanently kill replica 1 of every set (KillAfter on serve.row). The
# breaker must open and route every request to the surviving replica:
# clean exit, top1_checksum EQUAL to the healthy 1-shard run (failover
# moves availability, never bits), zero degraded responses, nonzero
# gateway.failovers, and a sealed flight dump naming the opened breaker.
echo "== check: gateway-bench replica failover smoke (--replicas 2 --poison-replica 1) =="
./target/release/gateway-bench --scale 0.05 --epochs 1 --queries 256 \
    --batch 32 --k 10 --shards 3 --replicas 2 \
    --checkpoint "$smoke_dir/smoke.wrck" --out "$smoke_dir/gwr-report.json"
gwr_sum="$(grep -Eo '"top1_checksum":"[0-9a-f]+"' "$smoke_dir/gwr-report.json")"
[ -n "$gwr_sum" ] && [ "$gwr_sum" = "$gw1_sum" ] \
    || { echo "   healthy 2-replica checksum diverged: $gwr_sum vs $gw1_sum"; exit 1; }
./target/release/gateway-bench --scale 0.05 --epochs 1 --queries 256 \
    --batch 32 --k 10 --shards 3 --replicas 2 --poison-replica 1 \
    --checkpoint "$smoke_dir/smoke.wrck" --out "$smoke_dir/gwrk-report.json" \
    --metrics-out "$smoke_dir/gwrk-metrics.json" --obs-dump-dir "$smoke_dir/obs-replica"
gwrk_sum="$(grep -Eo '"top1_checksum":"[0-9a-f]+"' "$smoke_dir/gwrk-report.json")"
[ -n "$gwrk_sum" ] && [ "$gwrk_sum" = "$gw1_sum" ] \
    || { echo "   kill-one-replica checksum diverged: $gwrk_sum vs $gw1_sum"; exit 1; }
grep -Eq '"gateway\.failovers":[1-9]' "$smoke_dir/gwrk-metrics.json"
grep -Eq '"gateway\.breaker_open":[1-9]' "$smoke_dir/gwrk-metrics.json"
grep -q '"gateway.degraded_responses":0' "$smoke_dir/gwrk-metrics.json"
test -s "$smoke_dir/obs-replica/flight.dump.jsonl"
grep -q '"kind":"breaker"' "$smoke_dir/obs-replica/flight.dump.jsonl"
echo "   replica failover ok: $gwrk_sum == $gw1_sum, $(grep -Eo '"gateway\.(failovers|breaker_open)":[0-9]+' "$smoke_dir/gwrk-metrics.json" | tr '\n' ' ')"

# Live telemetry smoke: chaos replay with the read-only HTTP endpoint up
# and the flight recorder armed. The binary self-scrapes /metrics and
# /flight through the real TCP surface (--obs-dump-dir) after the replay;
# the scrape must carry live gateway.* traffic counters, the flight ring
# must name the permanently-panicked victim requests, and the sealed
# incident dump must have been written on the first degradation trigger.
echo "== check: gateway-bench live telemetry smoke (--obs-listen) =="
WR_FAULT_SEED=20240613 ./target/release/gateway-bench --scale 0.05 --epochs 1 \
    --queries 256 --batch 32 --k 10 --shards 3 --poison-shard 1 \
    --checkpoint "$smoke_dir/smoke.wrck" --out "$smoke_dir/obs-report.json" \
    --obs-listen 127.0.0.1:0 --obs-dump-dir "$smoke_dir/obs"
grep -q '"format":"wr-obs/v1"' "$smoke_dir/obs/metrics.scrape.json"
grep -Eq '"gateway\.requests":[1-9]' "$smoke_dir/obs/metrics.scrape.json"
grep -Eq '"gateway\.fanout_calls":[1-9]' "$smoke_dir/obs/metrics.scrape.json"
grep -q '"format":"wr-flight/v1"' "$smoke_dir/obs/flight.scrape.jsonl"
grep -Eq '"kind":"panic".*"req":[0-9]+' "$smoke_dir/obs/flight.scrape.jsonl"
test -s "$smoke_dir/obs/flight.dump.jsonl"
grep -Eq '"kind":"panic".*"req":[0-9]+' "$smoke_dir/obs/flight.dump.jsonl"
echo "   obs ok: $(grep -c '"kind":"panic"' "$smoke_dir/obs/flight.dump.jsonl") panic event(s) in the sealed dump"

echo "== check: ok =="
