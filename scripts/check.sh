#!/usr/bin/env bash
# Tier-1 gate: warning-free release build, the wr-check static-analysis
# pass, the full test suite, and the same suite pinned to one thread
# (WR_THREADS=1 exercises the pool's sequential fallback — the path every
# parallel primitive must match bit-for-bit).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== check: cargo build --release (-D warnings) =="
RUSTFLAGS="-D warnings" cargo build --release --workspace

echo "== check: wr-check static analysis =="
./target/release/wr-check

echo "== check: cargo test (default threads) =="
cargo test --workspace -q

echo "== check: cargo test (WR_THREADS=1) =="
WR_THREADS=1 cargo test --workspace -q

echo "== check: ok =="
