#!/usr/bin/env bash
# Regenerate every paper table/figure. Results land in results/.
# Heavier sweeps are restricted to the datasets the paper itself highlights;
# override with WR_DATASETS / WR_SCALE / WR_EPOCHS.
set -uo pipefail
cd "$(dirname "$0")"
mkdir -p results

# Preflight: the tier-1 gate (build + tests + WR_THREADS=1 tests) must pass
# before hours of sweeps start. Skip with WR_SKIP_CHECK=1 on re-runs.
if [ "${WR_SKIP_CHECK:-0}" != "1" ]; then
  scripts/check.sh || { echo "preflight check failed; aborting" >&2; exit 1; }
fi
BIN="cargo run --release -q -p wr-bench --bin"

run() { # run <name> <datasets> [epochs]
  local name="$1" ds="$2" ep="${3:-10}"
  if [ -s "results/$name.txt" ]; then
    echo "=== $name: cached in results/$name.txt (delete to re-run) ==="
    return
  fi
  echo "=== $name (datasets: $ds) ==="
  WR_DATASETS="$ds" WR_EPOCHS="$ep" $BIN "$name" >"results/$name.txt" 2>"results/$name.log"
  tail -3 "results/$name.txt" || true
}

ALL="Arts,Toys,Tools,Food"

run exp_table2_stats     "$ALL"
run exp_fig2_spectrum    "$ALL"
run exp_fig4_cdf         "Arts"
run exp_prop_info        "Arts"
run exp_fig3_tsne        "Arts"
run exp_table1           "Arts,Toys,Tools"
run exp_table9_efficiency "Tools"
run exp_fig7_conditioning "Arts"
run exp_fig6_uniformity  "Arts"
run exp_table7_ensemble  "Arts,Toys"
run exp_table8_id        "Arts,Tools"
run exp_table5_projection "Arts,Toys"
run exp_table6_whitening "Arts,Food"
run exp_fig5_groups      "Arts,Toys,Tools"
run exp_fig8_groups_plus "Arts,Food"
run exp_table4_cold      "$ALL"
run exp_table3_warm      "$ALL"
run exp_ext_gated_id     "Arts,Tools"
run exp_abl_eps          "Arts"

run exp_abl_loss         "Arts"
run exp_ext_transfer     "Arts"  15

echo "All experiments complete; see results/."
