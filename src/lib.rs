//! Umbrella crate for the WhitenRec reproduction workspace.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). The library surface simply re-exports
//! [`whitenrec`], the actual entry-point crate.

pub use whitenrec::*;
