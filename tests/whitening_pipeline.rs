//! Integration: textsim → whitening. The simulated PLM embeddings must
//! exhibit the paper's §III-B pathology, and the whitening stack must fix
//! it — the premise of the whole method.

use whitenrec::textsim::{Catalog, CatalogConfig, PlmConfig, PlmEncoder};
use whitenrec::whiten::{
    average_pairwise_cosine, group_whiten, whiteness_error, WhiteningMethod,
    WhiteningTransform, DEFAULT_EPS,
};

fn embeddings() -> (Catalog, whitenrec::tensor::Tensor) {
    let catalog = Catalog::generate(CatalogConfig {
        n_items: 900,
        ..CatalogConfig::default()
    });
    let encoder = PlmEncoder::new(catalog.config.n_factors, PlmConfig {
        dim: 128,
        ..PlmConfig::default()
    });
    let emb = encoder.encode(&catalog);
    (catalog, emb)
}

#[test]
fn simulated_plm_is_anisotropic_and_whitening_fixes_it() {
    let (_, emb) = embeddings();
    let raw_cos = average_pairwise_cosine(&emb, 2000, 1);
    assert!(raw_cos > 0.7, "raw avg cosine {raw_cos}, expected BERT-like ≈0.85");
    assert!(whiteness_error(&emb) > 0.5);

    let z = WhiteningTransform::fit(&emb, WhiteningMethod::Zca, DEFAULT_EPS).apply(&emb);
    let white_cos = average_pairwise_cosine(&z, 2000, 2);
    assert!(white_cos.abs() < 0.1, "whitened avg cosine {white_cos}");
    assert!(whiteness_error(&z) < 0.2, "whiteness {}", whiteness_error(&z));
}

#[test]
fn group_whitening_interpolates_between_raw_and_full() {
    let (_, emb) = embeddings();
    let cos_of = |g: usize| {
        average_pairwise_cosine(
            &group_whiten(&emb, g, WhiteningMethod::Zca, DEFAULT_EPS),
            1500,
            3,
        )
    };
    let c1 = cos_of(1);
    let c8 = cos_of(8);
    let c64 = cos_of(64);
    // Stronger relaxation → more of the raw similarity structure survives.
    assert!(c1.abs() < c8.abs() + 1e-3, "G=1 {c1} vs G=8 {c8}");
    assert!(c8 <= c64 + 0.05, "G=8 {c8} vs G=64 {c64}");
}

#[test]
fn whitening_preserves_semantic_neighborhoods() {
    // ZCA rotates back to the original axes, so same-category items should
    // remain more similar than cross-category ones even after whitening.
    let (catalog, emb) = embeddings();
    let z = WhiteningTransform::fit(&emb, WhiteningMethod::Zca, DEFAULT_EPS).apply(&emb);
    let zn = z.l2_normalize_rows();
    let mut same = Vec::new();
    let mut diff = Vec::new();
    for i in (0..catalog.n_items()).step_by(11) {
        for j in (i + 1..catalog.n_items()).step_by(31) {
            let cos: f32 = zn.row(i).iter().zip(zn.row(j)).map(|(a, b)| a * b).sum();
            if catalog.items[i].category == catalog.items[j].category {
                same.push(cos);
            } else {
                diff.push(cos);
            }
        }
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    assert!(
        mean(&same) > mean(&diff),
        "semantics destroyed: same {} vs diff {}",
        mean(&same),
        mean(&diff)
    );
}

#[test]
fn all_methods_whiten_the_plm_embeddings() {
    let (_, emb) = embeddings();
    for method in [WhiteningMethod::Zca, WhiteningMethod::Pca, WhiteningMethod::Cholesky] {
        let z = WhiteningTransform::fit(&emb, method, DEFAULT_EPS).apply(&emb);
        let err = whiteness_error(&z);
        assert!(err < 0.25, "{:?}: whiteness error {err}", method);
    }
    // BN only standardizes — correlation (and thus whiteness error) remains.
    let bn = WhiteningTransform::fit(&emb, WhiteningMethod::BatchNorm, DEFAULT_EPS).apply(&emb);
    assert!(whiteness_error(&bn) > 0.5, "BN should not decorrelate");
}
