//! Integration: the full data → model → train → eval path, and the
//! headline claim at miniature scale — whitening improves a text-only
//! sequential recommender.

use whitenrec::data::{DatasetKind, DatasetSpec};
use whitenrec::models::ModelConfig;
use whitenrec::ExperimentContext;

fn tiny_context() -> ExperimentContext {
    // Mirrors the harness conditions where the Table I effect is robust:
    // thinned interactions per item (scaled_items) and a budget short
    // enough that convergence speed — whitening's main lever here — shows.
    let spec = DatasetSpec::preset(DatasetKind::Arts)
        .scaled(0.12)
        .scaled_items(2.0);
    let mut ctx = ExperimentContext::from_spec(spec);
    ctx.model_config = ModelConfig {
        dim: 32,
        blocks: 1,
        max_seq: 15,
        dropout: 0.1,
        ..ModelConfig::default()
    };
    ctx.train_config.max_epochs = 6;
    ctx.train_config.patience = 6;
    ctx.train_config.max_seq = 15;
    ctx.eval_cap = 500;
    ctx
}

#[test]
fn whitening_beats_raw_text_embeddings() {
    let ctx = tiny_context();
    let raw = ctx.run_warm("SASRec(T)");
    let white = ctx.run_warm("WhitenRec");
    // Table I's claim. At miniature scale we demand a clear, not marginal,
    // ordering on NDCG@20.
    assert!(
        white.test_metrics.ndcg_at(20) > raw.test_metrics.ndcg_at(20),
        "WhitenRec {} vs SASRec(T) {}",
        white.test_metrics.ndcg_at(20),
        raw.test_metrics.ndcg_at(20)
    );
}

#[test]
fn training_reduces_loss_and_improves_validation() {
    let ctx = tiny_context();
    let trained = ctx.run_warm("WhitenRec+");
    let epochs = &trained.report.epochs;
    assert!(epochs.len() >= 2);
    let first = epochs.first().unwrap().train_loss;
    let last = epochs.last().unwrap().train_loss;
    assert!(last < first, "loss did not fall: {first} -> {last}");
    assert!(trained.report.best_valid_ndcg > 0.0);
    // Metrics are internally consistent.
    let m = &trained.test_metrics;
    assert!(m.recall_at(50) >= m.recall_at(20));
    assert!(m.ndcg_at(50) >= m.ndcg_at(20));
    assert!(m.recall_at(20) >= m.ndcg_at(20)); // single-positive NDCG ≤ recall
}

#[test]
fn text_models_have_fewer_parameters_than_id_models() {
    let ctx = tiny_context();
    let text = ctx.build_model("WhitenRec");
    let id = ctx.build_model("SASRec(ID)");
    let both = ctx.build_model("SASRec(T+ID)");
    // Table IX's parameter ordering at any scale where
    // n_items × dim dominates the projection head.
    assert!(both.param_count() > id.param_count());
    assert!(both.param_count() > text.param_count());
}

#[test]
fn deterministic_given_seeds() {
    let a = tiny_context().run_warm("WhitenRec");
    let b = tiny_context().run_warm("WhitenRec");
    assert_eq!(
        a.test_metrics.recall_at(20),
        b.test_metrics.recall_at(20),
        "pipeline must be reproducible from seeds"
    );
    assert_eq!(a.report.epochs.len(), b.report.epochs.len());
    for (ra, rb) in a.report.epochs.iter().zip(&b.report.epochs) {
        assert_eq!(ra.train_loss, rb.train_loss);
    }
}
