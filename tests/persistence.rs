//! Integration: checkpointing a trained model preserves its behaviour, and
//! experiment records survive a JSONL round trip.

use whitenrec::data::Batch;
use whitenrec::models::{zoo, ModelConfig};
use whitenrec::nn::{load_params, restore_params, save_params};
use whitenrec::tensor::{Rng64, Tensor};
use whitenrec::train::{Adam, AdamConfig, SeqRecModel};
use wr_serve::{Request, ServeConfig, ServeEngine};

fn trained_model() -> (Box<dyn SeqRecModel>, Vec<Vec<usize>>) {
    let mut rng = Rng64::seed_from(5);
    let emb = Tensor::randn(&[20, 16], &mut rng);
    let cats: Vec<usize> = (0..20).map(|i| i % 3).collect();
    let seqs: Vec<Vec<usize>> = (0..16).map(|u| (0..6).map(|t| (u + t) % 20).collect()).collect();
    let inputs = zoo::ZooInputs {
        embeddings: &emb,
        item_categories: &cats,
        train_sequences: &seqs,
        relaxed_groups: 4,
    };
    let config = ModelConfig {
        dim: 16,
        blocks: 1,
        max_seq: 8,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let mut model = zoo::build("WhitenRec+", &inputs, config, &mut rng);
    let mut opt = Adam::new(AdamConfig::default());
    let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
    let batch = Batch::from_sequences(&refs, config.max_seq);
    for _ in 0..5 {
        model.train_step(&batch, &mut opt, &mut rng);
    }
    (model, seqs)
}

#[test]
fn checkpoint_roundtrip_preserves_scores() {
    let (model, _) = trained_model();
    let path = std::env::temp_dir().join(format!("wr_model_{}.wrck", std::process::id()));
    save_params(&path, &model.params()).unwrap();

    let ctx: &[usize] = &[1, 2, 3];
    let before = model.score(&[ctx]);

    // Scramble every parameter, then restore.
    for p in model.params() {
        p.update(|t| {
            t.scale_(0.0);
            let _ = t;
        });
    }
    let scrambled = model.score(&[ctx]);
    assert_ne!(before.data(), scrambled.data(), "scramble must change scores");

    let loaded = load_params(&path).unwrap();
    restore_params(&model.params(), &loaded).unwrap();
    let after = model.score(&[ctx]);
    assert_eq!(before.data(), after.data(), "restore must reproduce scores exactly");
    std::fs::remove_file(path).ok();
}

/// The deployment path end to end: train → `save_params` → rebuild the
/// same architecture (same frozen inputs, fresh trainable init) →
/// `ServeEngine::from_checkpoint` → serve. The restored engine must answer
/// exactly like an engine wrapping the still-in-memory trained model, and
/// its raw scores must be bit-identical to `model.score` on the same
/// contexts — checkpointing through the serve path loses nothing.
#[test]
fn checkpoint_serves_identically_to_in_memory_model() {
    let (model, seqs) = trained_model();
    let path = std::env::temp_dir().join(format!("wr_serve_{}.wrck", std::process::id()));
    save_params(&path, &model.params()).unwrap();

    // Raw-score reference, captured before the model moves into the engine.
    let contexts: Vec<&[usize]> = seqs.iter().take(6).map(|s| s.as_slice()).collect();
    let direct_scores = model.score(&contexts);

    let cfg = ServeConfig {
        k: 8,
        max_batch: 4,
        max_seq: 8,
        filter_seen: true,
    };
    let in_memory = ServeEngine::new(model, cfg);

    // Same architecture + same frozen whitened table (trained_model is
    // fully seeded), different trainable init — the checkpoint overwrites
    // every trainable parameter.
    let (fresh, _) = trained_model();
    for p in fresh.params() {
        p.update(|t| {
            t.scale_(0.5);
            let _ = t;
        });
    }
    let restored = ServeEngine::from_checkpoint(fresh, &path, cfg).unwrap();
    std::fs::remove_file(&path).ok();

    let requests: Vec<Request> = seqs
        .iter()
        .enumerate()
        .map(|(i, s)| Request {
            id: i as u64,
            history: s.clone(),
        })
        .collect();
    let a = in_memory.serve(&requests);
    let b = restored.serve(&requests);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.id, rb.id);
        for (sa, sb) in ra.items.iter().zip(&rb.items) {
            assert_eq!(sa.item, sb.item);
            assert_eq!(sa.score.to_bits(), sb.score.to_bits());
        }
    }

    // The engine's cached-V scoring path reproduces model.score exactly
    // for this Softmax-loss model: compare full rows, not just top-k.
    for (row, ctx) in contexts.iter().enumerate() {
        let served = restored.recommend(ctx);
        let full = direct_scores.row(row);
        for s in &served {
            assert_eq!(
                s.score.to_bits(),
                full[s.item].to_bits(),
                "served score for item {} differs from model.score",
                s.item
            );
        }
    }
}

#[test]
fn checkpoint_is_compact() {
    let (model, _) = trained_model();
    let path = std::env::temp_dir().join(format!("wr_size_{}.wrck", std::process::id()));
    save_params(&path, &model.params()).unwrap();
    let bytes = std::fs::metadata(&path).unwrap().len() as usize;
    let scalars = model.param_count();
    // 4 bytes per f32 + bounded metadata overhead.
    assert!(bytes >= scalars * 4);
    assert!(
        bytes < scalars * 4 + 200 * model.params().len() + 64,
        "checkpoint overhead too large: {bytes} bytes for {scalars} scalars"
    );
    std::fs::remove_file(path).ok();
}
