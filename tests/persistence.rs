//! Integration: checkpointing a trained model preserves its behaviour, and
//! experiment records survive a JSONL round trip.

use whitenrec::data::Batch;
use whitenrec::models::{zoo, ModelConfig};
use whitenrec::nn::{load_params, restore_params, save_params};
use whitenrec::tensor::{Rng64, Tensor};
use whitenrec::train::{Adam, AdamConfig, SeqRecModel};

fn trained_model() -> (Box<dyn SeqRecModel>, Vec<Vec<usize>>) {
    let mut rng = Rng64::seed_from(5);
    let emb = Tensor::randn(&[20, 16], &mut rng);
    let cats: Vec<usize> = (0..20).map(|i| i % 3).collect();
    let seqs: Vec<Vec<usize>> = (0..16).map(|u| (0..6).map(|t| (u + t) % 20).collect()).collect();
    let inputs = zoo::ZooInputs {
        embeddings: &emb,
        item_categories: &cats,
        train_sequences: &seqs,
        relaxed_groups: 4,
    };
    let config = ModelConfig {
        dim: 16,
        blocks: 1,
        max_seq: 8,
        dropout: 0.0,
        ..ModelConfig::default()
    };
    let mut model = zoo::build("WhitenRec+", &inputs, config, &mut rng);
    let mut opt = Adam::new(AdamConfig::default());
    let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
    let batch = Batch::from_sequences(&refs, config.max_seq);
    for _ in 0..5 {
        model.train_step(&batch, &mut opt, &mut rng);
    }
    (model, seqs)
}

#[test]
fn checkpoint_roundtrip_preserves_scores() {
    let (model, _) = trained_model();
    let path = std::env::temp_dir().join(format!("wr_model_{}.wrck", std::process::id()));
    save_params(&path, &model.params()).unwrap();

    let ctx: &[usize] = &[1, 2, 3];
    let before = model.score(&[ctx]);

    // Scramble every parameter, then restore.
    for p in model.params() {
        p.update(|t| {
            t.scale_(0.0);
            let _ = t;
        });
    }
    let scrambled = model.score(&[ctx]);
    assert_ne!(before.data(), scrambled.data(), "scramble must change scores");

    let loaded = load_params(&path).unwrap();
    restore_params(&model.params(), &loaded).unwrap();
    let after = model.score(&[ctx]);
    assert_eq!(before.data(), after.data(), "restore must reproduce scores exactly");
    std::fs::remove_file(path).ok();
}

#[test]
fn checkpoint_is_compact() {
    let (model, _) = trained_model();
    let path = std::env::temp_dir().join(format!("wr_size_{}.wrck", std::process::id()));
    save_params(&path, &model.params()).unwrap();
    let bytes = std::fs::metadata(&path).unwrap().len() as usize;
    let scalars = model.param_count();
    // 4 bytes per f32 + bounded metadata overhead.
    assert!(bytes >= scalars * 4);
    assert!(
        bytes < scalars * 4 + 200 * model.params().len() + 64,
        "checkpoint overhead too large: {bytes} bytes for {scalars} scalars"
    );
    std::fs::remove_file(path).ok();
}
