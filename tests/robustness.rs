//! Failure injection and degenerate-input robustness across the stack.

use whitenrec::data::{warm_split, Batch};
use whitenrec::linalg::{cholesky, sym_eig, LinalgError};
use whitenrec::models::{zoo, ModelConfig};
use whitenrec::tensor::{Rng64, Tensor};
use whitenrec::train::{Adam, AdamConfig, SeqRecModel};
use whitenrec::whiten::{WhiteningMethod, WhiteningTransform};

fn build_model(name: &str, emb: &Tensor, seqs: &[Vec<usize>]) -> Box<dyn SeqRecModel> {
    let cats: Vec<usize> = (0..emb.rows()).map(|i| i % 3).collect();
    let inputs = zoo::ZooInputs {
        embeddings: emb,
        item_categories: &cats,
        train_sequences: seqs,
        relaxed_groups: 4,
    };
    let cfg = ModelConfig {
        dim: 16,
        blocks: 1,
        max_seq: 8,
        ..ModelConfig::default()
    };
    let mut rng = Rng64::seed_from(1);
    zoo::build(name, &inputs, cfg, &mut rng)
}

#[test]
fn training_on_constant_sequences_stays_finite() {
    // Users who buy the same item over and over: gradients must not blow up.
    let mut rng = Rng64::seed_from(2);
    let emb = Tensor::randn(&[12, 16], &mut rng);
    let seqs: Vec<Vec<usize>> = (0..12).map(|u| vec![u % 12; 6]).collect();
    for name in ["SASRec(ID)", "WhitenRec", "WhitenRec+"] {
        let mut model = build_model(name, &emb, &seqs);
        let mut opt = Adam::new(AdamConfig::default());
        let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
        let batch = Batch::from_sequences(&refs, 8);
        for _ in 0..5 {
            let loss = model.train_step(&batch, &mut opt, &mut rng);
            assert!(loss.is_finite(), "{name}: loss diverged");
        }
        let scores = model.score(&[&[0][..]]);
        assert_eq!(scores.non_finite_count(), 0, "{name}: NaN in scores");
    }
}

#[test]
fn whitening_nearly_duplicate_items_is_stable() {
    // Rank-deficient input: many duplicated rows. ε-regularization must
    // keep the transform finite.
    let mut rng = Rng64::seed_from(3);
    let base = Tensor::randn(&[4, 16], &mut rng);
    let rows: Vec<usize> = (0..64).map(|i| i % 4).collect();
    let x = base.gather_rows(&rows);
    let z = WhiteningTransform::fit(&x, WhiteningMethod::Zca, 1e-4).apply(&x);
    assert_eq!(z.non_finite_count(), 0);
    // Duplicate inputs must stay duplicates after an affine map.
    assert_eq!(z.row(0), z.row(4));
}

#[test]
fn linalg_rejects_bad_inputs_without_panicking() {
    let nan = Tensor::from_vec(vec![f32::NAN; 4], &[2, 2]);
    assert!(matches!(sym_eig(&nan), Err(LinalgError::NonFinite)));
    assert!(matches!(cholesky(&nan), Err(LinalgError::NonFinite)));

    let indefinite = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
    assert!(matches!(
        cholesky(&indefinite),
        Err(LinalgError::NotPositiveDefinite { .. })
    ));
}

#[test]
fn adam_survives_zero_and_huge_gradients() {
    use whitenrec::autograd::Graph;
    use whitenrec::nn::{Param, Session};
    let theta = Param::new("t", Tensor::ones(&[4]));
    let mut opt = Adam::new(AdamConfig {
        lr: 0.1,
        ..AdamConfig::default()
    });
    for scale in [0.0f32, 1e8, 0.0, 1e-20] {
        let g = Graph::new();
        let mut sess = Session::train(&g, Rng64::seed_from(0));
        let th = sess.bind(&theta);
        let w = g.constant(Tensor::full(&[4], scale));
        let loss = g.sum_all(g.mul(th, w));
        g.backward(loss);
        opt.step(&g, sess.bindings());
        assert_eq!(theta.get().non_finite_count(), 0, "scale {scale} broke Adam");
    }
}

#[test]
fn warm_split_of_short_sequences_is_empty_not_panicking() {
    let seqs = vec![vec![1], vec![2, 3]];
    let split = warm_split(&seqs);
    assert!(split.train.is_empty());
    assert!(split.test.is_empty());
}

#[test]
fn scoring_with_very_long_context_truncates() {
    let mut rng = Rng64::seed_from(4);
    let emb = Tensor::randn(&[10, 16], &mut rng);
    let seqs: Vec<Vec<usize>> = (0..10).map(|u| vec![u % 10; 6]).collect();
    let model = build_model("WhitenRec", &emb, &seqs);
    // Context 10× longer than max_seq.
    let long: Vec<usize> = (0..80).map(|i| i % 10).collect();
    let s = model.score(&[long.as_slice()]);
    assert_eq!(s.dims(), &[1, 10]);
    assert_eq!(s.non_finite_count(), 0);
}
