//! Cross-crate contract tests for `wr-obs` exports.
//!
//! `wr-obs` sits below `wr-tensor` and therefore writes JSON with its own
//! helpers; these tests pin the two dialects together (everything obs
//! emits must parse with `wr_tensor::Json`) and hold the Chrome trace
//! format to a committed golden fixture so the Perfetto-facing shape can't
//! drift silently.
//!
//! Regenerate the fixture after an intentional format change with:
//! `WR_REGEN_GOLDEN=1 cargo test --test obs_export`.

use std::sync::Arc;

use wr_obs::{Histogram, MockClock, Telemetry};
use wr_tensor::Json;

const GOLDEN_PATH: &str = "tests/golden/trace_events.json";

/// A fully deterministic trace: every timestamp comes from a manually
/// advanced [`MockClock`], so the exported document is byte-stable.
fn golden_telemetry() -> (Arc<MockClock>, Telemetry) {
    let clock = Arc::new(MockClock::new());
    let tel = Telemetry::with_clock(clock.clone());
    {
        // Nested spans: whiten.fit entirely inside epoch0.
        let epoch = tel.tracer.span("epoch0", "train");
        clock.advance(1_000);
        {
            let _fit = tel.tracer.span("whiten.fit", "whiten");
            clock.advance(2_500);
        }
        clock.advance(1_000);
        drop(epoch);
    }
    // A zero-duration span and an explicitly recorded interval.
    drop(tel.tracer.span("noop", "test"));
    tel.tracer.record("replay", "serve", 0, 7_250);
    (clock, tel)
}

#[test]
fn chrome_trace_matches_the_golden_fixture() {
    let (_clock, tel) = golden_telemetry();
    let doc = tel.tracer.to_chrome_json();

    if std::env::var("WR_REGEN_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, doc.clone() + "\n").unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden fixture missing — run with WR_REGEN_GOLDEN=1 to create it");
    assert_eq!(
        doc,
        golden.trim_end(),
        "Chrome trace format drifted from tests/golden/trace_events.json"
    );
}

#[test]
fn chrome_trace_shape_is_valid_trace_event_json() {
    let (_clock, tel) = golden_telemetry();
    let parsed = Json::parse(&tel.tracer.to_chrome_json()).unwrap();
    assert_eq!(
        parsed.get("displayTimeUnit").unwrap().as_str().unwrap(),
        "ms"
    );
    let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), 4);
    for ev in events {
        // The complete-event shape Perfetto requires.
        assert_eq!(ev.get("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(ev.get("pid").unwrap().as_usize().unwrap(), 1);
        assert!(ev.get("name").unwrap().as_str().is_some());
        assert!(ev.get("cat").unwrap().as_str().is_some());
        assert!(ev.get("ts").unwrap().as_f64().is_some());
        assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        assert!(ev.get("tid").unwrap().as_usize().is_some());
    }
    // Spans close in end order: the nested fit precedes its parent epoch;
    // timestamps are microseconds.
    let names: Vec<&str> = events
        .iter()
        .map(|e| e.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, ["whiten.fit", "epoch0", "noop", "replay"]);
    let fit = &events[0];
    assert_eq!(fit.get("ts").unwrap().as_f64().unwrap(), 1.0);
    assert_eq!(fit.get("dur").unwrap().as_f64().unwrap(), 2.5);
    let epoch = &events[1];
    assert_eq!(epoch.get("ts").unwrap().as_f64().unwrap(), 0.0);
    assert_eq!(epoch.get("dur").unwrap().as_f64().unwrap(), 4.5);
}

#[test]
fn trace_jsonl_lines_parse_individually() {
    let (_clock, tel) = golden_telemetry();
    let jsonl = tel.tracer.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 4);
    for line in lines {
        let parsed = Json::parse(line).unwrap();
        assert!(parsed.get("name").unwrap().as_str().is_some());
        assert!(parsed.get("ts_us").unwrap().as_f64().is_some());
        assert!(parsed.get("dur_us").unwrap().as_f64().is_some());
        assert!(parsed.get("tid").unwrap().as_usize().is_some());
    }
}

#[test]
fn registry_snapshot_parses_with_the_workspace_json_parser() {
    let tel = Telemetry::new();
    tel.registry.counter("serve.requests").add(42);
    tel.registry.gauge("whiten.post.condition_number").set(1.25);
    // Non-finite gauges must serialize as null, the wr_tensor convention.
    tel.registry.gauge("bad").set(f64::NAN);
    let h = tel
        .registry
        .histogram("lat_ms", &Histogram::default_ms_bounds());
    h.observe(0.5);
    h.observe(3.0);
    h.observe(250.0);

    let doc = tel.registry.to_json();
    let parsed = Json::parse(&doc).unwrap();
    assert_eq!(parsed.get("format").unwrap().as_str().unwrap(), "wr-obs/v1");
    let counters = parsed.get("counters").unwrap();
    assert_eq!(counters.get("serve.requests").unwrap().as_usize(), Some(42));
    let gauges = parsed.get("gauges").unwrap();
    assert_eq!(
        gauges.get("whiten.post.condition_number").unwrap().as_f64(),
        Some(1.25)
    );
    assert!(matches!(gauges.get("bad").unwrap(), Json::Null));
    let hist = parsed.get("histograms").unwrap().get("lat_ms").unwrap();
    assert_eq!(hist.get("count").unwrap().as_usize(), Some(3));
    assert_eq!(hist.get("min").unwrap().as_f64(), Some(0.5));
    assert_eq!(hist.get("max").unwrap().as_f64(), Some(250.0));
    let buckets = hist.get("buckets").unwrap().as_arr().unwrap();
    let bounds = hist.get("bounds").unwrap().as_arr().unwrap();
    assert_eq!(buckets.len(), bounds.len() + 1);
}

#[test]
fn float_dialects_agree_between_obs_and_tensor_json() {
    // Spot-check that numbers round-trip identically through both writers:
    // serialize a gauge with an awkward mantissa via obs, parse with
    // wr_tensor, compare bit patterns. (-0.0 is excluded: the integer
    // shortcut in both dialects normalizes it to 0, by design.)
    for v in [
        0.1,
        1.0 / 3.0,
        1e-12,
        123456789.123456,
        f64::MIN_POSITIVE,
    ] {
        let tel = Telemetry::new();
        tel.registry.gauge("x").set(v);
        let parsed = Json::parse(&tel.registry.to_json()).unwrap();
        let got = parsed
            .get("gauges")
            .unwrap()
            .get("x")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(got.to_bits(), v.to_bits(), "{v} mangled in transit");
    }
}
