//! Integration: the cold-start protocol. Text reaches items IDs cannot.

use whitenrec::data::{DatasetKind, DatasetSpec};
use whitenrec::models::ModelConfig;
use whitenrec::ExperimentContext;

fn ctx() -> ExperimentContext {
    let spec = DatasetSpec::preset(DatasetKind::Tools).scaled(0.12);
    let mut ctx = ExperimentContext::from_spec(spec);
    ctx.model_config = ModelConfig {
        dim: 32,
        blocks: 1,
        max_seq: 15,
        dropout: 0.1,
        ..ModelConfig::default()
    };
    ctx.train_config.max_epochs = 12;
    ctx.train_config.max_seq = 15;
    ctx.eval_cap = 300;
    ctx
}

#[test]
fn cold_split_is_well_formed() {
    let ctx = ctx();
    let cold = &ctx.cold;
    let n_cold = cold.is_cold.iter().filter(|&&c| c).count();
    let frac = n_cold as f32 / cold.is_cold.len() as f32;
    assert!((0.10..=0.20).contains(&frac), "cold fraction {frac}");
    for seq in &cold.train {
        for &i in seq {
            assert!(!cold.is_cold[i]);
        }
    }
    assert!(!cold.test.is_empty());
}

#[test]
fn text_model_beats_id_model_on_cold_items() {
    let ctx = ctx();
    let text = ctx.run_cold("WhitenRec+");
    let id = ctx.run_cold("SASRec(ID)");
    // ID embeddings of cold items are never updated — text must win.
    assert!(
        text.test_metrics.recall_at(50) > id.test_metrics.recall_at(50),
        "WhitenRec+ {} vs SASRec(ID) {} on cold R@50",
        text.test_metrics.recall_at(50),
        id.test_metrics.recall_at(50)
    );
}

#[test]
fn cold_targets_are_text_predictable() {
    // The property the simulator must guarantee for Table IV to be
    // meaningful: cold targets are predictable from context via text alone.
    // (Model-level cold lift needs more data than this micro fixture — the
    // projection head memorizes a few hundred warm items through the
    // whitening-amplified noise dimensions; see exp_table4_cold for the
    // harness-scale model comparison.)
    let ctx = ctx();
    let emb = ctx.dataset.embeddings.l2_normalize_rows();
    let cold_ids: Vec<usize> = (0..ctx.dataset.n_items())
        .filter(|&i| ctx.cold.is_cold[i])
        .collect();
    let mut top_half = 0usize;
    let cases: Vec<_> = ctx.cold.test.iter().take(300).cloned().collect();
    for case in &cases {
        let mut u = vec![0.0f32; emb.cols()];
        for &i in &case.context {
            for (a, b) in u.iter_mut().zip(emb.row(i)) {
                *a += b;
            }
        }
        let score = |item: usize| -> f32 {
            u.iter().zip(emb.row(item)).map(|(a, b)| a * b).sum()
        };
        let ts = score(case.target);
        let better = cold_ids
            .iter()
            .filter(|&&i| i != case.target && score(i) > ts)
            .count();
        if better < cold_ids.len() / 2 {
            top_half += 1;
        }
    }
    let rate = top_half as f32 / cases.len() as f32;
    assert!(
        rate > 0.6,
        "cold targets not text-predictable: top-half rate {rate}"
    );
}
