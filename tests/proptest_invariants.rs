//! Property-based invariants across the numeric core.

use proptest::prelude::*;
use whitenrec::linalg::{cholesky, covariance_of_rows, pinv, sym_eig};
use whitenrec::tensor::{Rng64, Tensor};
use whitenrec::whiten::{
    group_whiten, whiteness_error, WhiteningMethod, WhiteningTransform,
};

fn random_matrix(rows: usize, cols: usize, seed: u64, spread: f32) -> Tensor {
    let mut rng = Rng64::seed_from(seed);
    // Random linear mix to induce correlations.
    let base = Tensor::randn(&[rows, cols], &mut rng);
    let mix = Tensor::randn(&[cols, cols], &mut rng).scale(spread);
    base.matmul(&mix.add(&Tensor::eye(cols)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any full-rank sample matrix is whitened to identity covariance by
    /// every decorrelating method.
    #[test]
    fn whitening_yields_identity_covariance(
        seed in 0u64..1000,
        cols in 3usize..10,
        spread in 0.2f32..2.0,
    ) {
        let x = random_matrix(300, cols, seed, spread);
        for method in [WhiteningMethod::Zca, WhiteningMethod::Pca, WhiteningMethod::Cholesky] {
            let z = WhiteningTransform::fit(&x, method, 1e-6).apply(&x);
            let err = whiteness_error(&z);
            prop_assert!(err < 0.15, "{:?} err {}", method, err);
        }
    }

    /// Whitening is idempotent up to numerics: whitening whitened data is
    /// (nearly) the identity transform. Restricted to reasonably
    /// conditioned inputs — near-singular mixes push the first whitening
    /// into the eps-floor where f32 round-off dominates.
    #[test]
    fn whitening_is_idempotent(seed in 0u64..1000) {
        let x = random_matrix(400, 6, seed, 0.3);
        // Skip pathologically conditioned draws: near-singular covariance
        // pushes the first whitening into the eps-floor where f32
        // round-off dominates and idempotence genuinely degrades.
        let kappa = whitenrec::linalg::condition_number(
            &covariance_of_rows(&x, 0.0), 1e-12).unwrap();
        prop_assume!(kappa < 1e3);
        let z = WhiteningTransform::fit(&x, WhiteningMethod::Zca, 1e-6).apply(&x);
        let z2 = WhiteningTransform::fit(&z, WhiteningMethod::Zca, 1e-6).apply(&z);
        let rel = z2.sub(&z).frob_norm() / z.frob_norm();
        prop_assert!(rel < 0.05, "second whitening moved data by {}", rel);
    }

    /// Group whitening with G groups leaves each within-group covariance
    /// block at identity.
    #[test]
    fn group_whitening_block_identity(seed in 0u64..500, groups in 1usize..4) {
        let cols = groups * 3;
        let x = random_matrix(350, cols, seed, 0.8);
        let z = group_whiten(&x, groups, WhiteningMethod::Zca, 1e-6);
        let cov = covariance_of_rows(&z, 0.0);
        let gs = cols / groups;
        for g in 0..groups {
            for i in 0..gs {
                for j in 0..gs {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    let got = cov.at2(g * gs + i, g * gs + j);
                    prop_assert!((got - expect).abs() < 0.15, "block cov {} vs {}", got, expect);
                }
            }
        }
    }

    /// Eigendecomposition reconstructs symmetric matrices.
    #[test]
    fn eig_reconstructs(seed in 0u64..1000, n in 2usize..12) {
        let mut rng = Rng64::seed_from(seed);
        let b = Tensor::randn(&[n, n], &mut rng);
        let a = b.matmul_tn(&b);
        let e = sym_eig(&a).unwrap();
        let r = e.rebuild_with(|l| l);
        let rel = a.sub(&r).frob_norm() / a.frob_norm().max(1e-6);
        prop_assert!(rel < 1e-3, "reconstruction error {}", rel);
        // eigenvalues of BᵀB are non-negative
        prop_assert!(e.values.iter().all(|&l| l > -1e-3));
    }

    /// Cholesky factor is lower-triangular and reconstructs.
    #[test]
    fn cholesky_reconstructs(seed in 0u64..1000, n in 2usize..10) {
        let mut rng = Rng64::seed_from(seed);
        let b = Tensor::randn(&[n + 2, n], &mut rng);
        let mut a = b.matmul_tn(&b).scale(1.0 / (n + 2) as f32);
        for i in 0..n {
            *a.at2_mut(i, i) += 0.1;
        }
        let l = cholesky(&a).unwrap();
        let rel = l.matmul_nt(&l).sub(&a).frob_norm() / a.frob_norm();
        prop_assert!(rel < 1e-3);
        for i in 0..n {
            for j in (i + 1)..n {
                prop_assert_eq!(l.at2(i, j), 0.0);
            }
        }
    }

    /// Moore–Penrose conditions hold for random rectangular matrices.
    #[test]
    fn pinv_satisfies_penrose(seed in 0u64..1000, m in 2usize..8, n in 2usize..8) {
        let mut rng = Rng64::seed_from(seed);
        let a = Tensor::randn(&[m, n], &mut rng);
        let ap = pinv(&a).unwrap();
        let p1 = a.matmul(&ap).matmul(&a).sub(&a).frob_norm() / a.frob_norm().max(1e-6);
        prop_assert!(p1 < 5e-3, "A A+ A != A: {}", p1);
        let p2 = ap.matmul(&a).matmul(&ap).sub(&ap).frob_norm() / ap.frob_norm().max(1e-6);
        prop_assert!(p2 < 5e-3, "A+ A A+ != A+: {}", p2);
    }

    /// Softmax rows of any matrix are a probability distribution.
    #[test]
    fn softmax_rows_are_distributions(seed in 0u64..1000, rows in 1usize..6, cols in 2usize..9) {
        let mut rng = Rng64::seed_from(seed);
        let x = Tensor::randn(&[rows, cols], &mut rng).scale(5.0);
        let s = x.softmax_rows();
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
