//! Property-style invariants across the numeric core.
//!
//! The offline workspace carries no proptest; each invariant is exercised
//! over a deterministic sweep of seeded random instances instead, keeping
//! the many-instances-per-property coverage while staying reproducible.

use whitenrec::linalg::{cholesky, condition_number, covariance_of_rows, pinv, sym_eig};
use whitenrec::tensor::{Rng64, Tensor};
use whitenrec::whiten::{
    group_whiten, whiteness_error, WhiteningMethod, WhiteningTransform,
};

const CASES: u64 = 24;

fn random_matrix(rows: usize, cols: usize, seed: u64, spread: f32) -> Tensor {
    let mut rng = Rng64::seed_from(seed);
    // Random linear mix to induce correlations.
    let base = Tensor::randn(&[rows, cols], &mut rng);
    let mix = Tensor::randn(&[cols, cols], &mut rng).scale(spread);
    base.matmul(&mix.add(&Tensor::eye(cols)))
}

/// Per-case parameter draws, mirroring the ranges the proptest version used.
fn case_rng(case: u64) -> Rng64 {
    Rng64::seed_from(0xABCDu64 ^ (case.wrapping_mul(0x9E3779B97F4A7C15)))
}

/// Any full-rank sample matrix is whitened to identity covariance by
/// every decorrelating method.
#[test]
fn whitening_yields_identity_covariance() {
    for case in 0..CASES {
        let mut p = case_rng(case);
        let cols = 3 + p.below(7);
        let spread = 0.2 + 1.8 * p.uniform();
        let x = random_matrix(300, cols, p.below(1000) as u64, spread);
        for method in [WhiteningMethod::Zca, WhiteningMethod::Pca, WhiteningMethod::Cholesky] {
            let z = WhiteningTransform::fit(&x, method, 1e-6).apply(&x);
            let err = whiteness_error(&z);
            assert!(err < 0.15, "case {case} {method:?} err {err}");
        }
    }
}

/// Whitening is idempotent up to numerics: whitening whitened data is
/// (nearly) the identity transform. Restricted to reasonably conditioned
/// inputs — near-singular mixes push the first whitening into the
/// eps-floor where f32 round-off dominates.
#[test]
fn whitening_is_idempotent() {
    for case in 0..CASES {
        let mut p = case_rng(case.wrapping_add(100));
        let x = random_matrix(400, 6, p.below(1000) as u64, 0.3);
        let kappa = condition_number(&covariance_of_rows(&x, 0.0), 1e-12).unwrap();
        if kappa >= 1e3 {
            continue; // the proptest version prop_assume!d these away
        }
        let z = WhiteningTransform::fit(&x, WhiteningMethod::Zca, 1e-6).apply(&x);
        let z2 = WhiteningTransform::fit(&z, WhiteningMethod::Zca, 1e-6).apply(&z);
        let rel = z2.sub(&z).frob_norm() / z.frob_norm();
        assert!(rel < 0.05, "case {case}: second whitening moved data by {rel}");
    }
}

/// Group whitening with G groups leaves each within-group covariance
/// block at identity.
#[test]
fn group_whitening_block_identity() {
    for case in 0..CASES {
        let mut p = case_rng(case.wrapping_add(200));
        let groups = 1 + p.below(3);
        let cols = groups * 3;
        let x = random_matrix(350, cols, p.below(500) as u64, 0.8);
        let z = group_whiten(&x, groups, WhiteningMethod::Zca, 1e-6);
        let cov = covariance_of_rows(&z, 0.0);
        let gs = cols / groups;
        for g in 0..groups {
            for i in 0..gs {
                for j in 0..gs {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    let got = cov.at2(g * gs + i, g * gs + j);
                    assert!(
                        (got - expect).abs() < 0.15,
                        "case {case}: block cov {got} vs {expect}"
                    );
                }
            }
        }
    }
}

/// Eigendecomposition reconstructs symmetric matrices.
#[test]
fn eig_reconstructs() {
    for case in 0..CASES {
        let mut p = case_rng(case.wrapping_add(300));
        let n = 2 + p.below(10);
        let mut rng = Rng64::seed_from(p.below(1000) as u64);
        let b = Tensor::randn(&[n, n], &mut rng);
        let a = b.matmul_tn(&b);
        let e = sym_eig(&a).unwrap();
        let r = e.rebuild_with(|l| l);
        let rel = a.sub(&r).frob_norm() / a.frob_norm().max(1e-6);
        assert!(rel < 1e-3, "case {case}: reconstruction error {rel}");
        // eigenvalues of BᵀB are non-negative
        assert!(e.values.iter().all(|&l| l > -1e-3));
    }
}

/// Cholesky factor is lower-triangular and reconstructs.
#[test]
fn cholesky_reconstructs() {
    for case in 0..CASES {
        let mut p = case_rng(case.wrapping_add(400));
        let n = 2 + p.below(8);
        let mut rng = Rng64::seed_from(p.below(1000) as u64);
        let b = Tensor::randn(&[n + 2, n], &mut rng);
        let mut a = b.matmul_tn(&b).scale(1.0 / (n + 2) as f32);
        for i in 0..n {
            *a.at2_mut(i, i) += 0.1;
        }
        let l = cholesky(&a).unwrap();
        let rel = l.matmul_nt(&l).sub(&a).frob_norm() / a.frob_norm();
        assert!(rel < 1e-3, "case {case}");
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(l.at2(i, j), 0.0, "case {case}: upper triangle not zero");
            }
        }
    }
}

/// Moore–Penrose conditions hold for random rectangular matrices.
#[test]
fn pinv_satisfies_penrose() {
    for case in 0..CASES {
        let mut p = case_rng(case.wrapping_add(500));
        let m = 2 + p.below(6);
        let n = 2 + p.below(6);
        let mut rng = Rng64::seed_from(p.below(1000) as u64);
        let a = Tensor::randn(&[m, n], &mut rng);
        let ap = pinv(&a).unwrap();
        let p1 = a.matmul(&ap).matmul(&a).sub(&a).frob_norm() / a.frob_norm().max(1e-6);
        assert!(p1 < 5e-3, "case {case}: A A+ A != A: {p1}");
        let p2 = ap.matmul(&a).matmul(&ap).sub(&ap).frob_norm() / ap.frob_norm().max(1e-6);
        assert!(p2 < 5e-3, "case {case}: A+ A A+ != A+: {p2}");
    }
}

/// Softmax rows of any matrix are a probability distribution.
#[test]
fn softmax_rows_are_distributions() {
    for case in 0..CASES {
        let mut p = case_rng(case.wrapping_add(600));
        let rows = 1 + p.below(5);
        let cols = 2 + p.below(7);
        let mut rng = Rng64::seed_from(p.below(1000) as u64);
        let x = Tensor::randn(&[rows, cols], &mut rng).scale(5.0);
        let s = x.softmax_rows();
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "case {case}: row sum {sum}");
            assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
