//! End-to-end gradient check: a miniature SASRec training objective
//! (tower → transformer → full-softmax CE) against central finite
//! differences. Verifies that the composed backward pass — attention,
//! LayerNorm, gather, projection head, cross-entropy — is consistent, not
//! just each op in isolation.

use whitenrec::autograd::{check_gradients, Graph, Var};
use whitenrec::nn::{
    causal_padding_mask, LayerNorm, Linear, Session,
};
use whitenrec::tensor::{Rng64, Tensor};

/// Build a 1-head attention + LN + linear-head next-item objective with
/// explicitly threaded parameters so the checker can perturb them.
fn mini_model_loss(
    g: &Graph,
    params: &[Tensor],
    item_table: &Tensor,
    seq_items: &[usize],
    target: usize,
) -> (Vec<Var>, Var) {
    let dim = item_table.cols();
    let t = seq_items.len();

    let wq = g.param(params[0].clone());
    let wk = g.param(params[1].clone());
    let wv = g.param(params[2].clone());
    let wproj = g.param(params[3].clone());

    let table = g.constant(item_table.clone());
    let x = g.gather_rows(table, seq_items); // [t, dim]

    let q = g.matmul(x, wq);
    let k = g.matmul(x, wk);
    let v = g.matmul(x, wv);
    let q3 = g.reshape(q, &[1, t, dim]);
    let k3 = g.reshape(k, &[1, t, dim]);
    let v3 = g.reshape(v, &[1, t, dim]);
    let scores = g.scale(g.bmm_nt(q3, k3), 1.0 / (dim as f32).sqrt());
    let mask = causal_padding_mask(1, t, &[t]);
    let scores = g.add(scores, g.constant(mask));
    let attn = g.softmax3d_last(scores);
    let h = g.reshape(g.bmm(attn, v3), &[t, dim]);

    let last = g.gather_rows(h, &[t - 1]); // [1, dim]
    let user = g.matmul(last, wproj);
    let logits = g.matmul(user, g.transpose(table));
    let loss = g.cross_entropy(logits, &[target]);
    (vec![wq, wk, wv, wproj], loss)
}

#[test]
fn composed_model_gradients_match_finite_differences() {
    let dim = 6;
    let mut rng = Rng64::seed_from(11);
    let item_table = Tensor::randn(&[8, dim], &mut rng).scale(0.7);
    let seq = [2usize, 5, 1, 7];
    let target = 3usize;

    let params = vec![
        Tensor::randn(&[dim, dim], &mut rng).scale(0.4),
        Tensor::randn(&[dim, dim], &mut rng).scale(0.4),
        Tensor::randn(&[dim, dim], &mut rng).scale(0.4),
        Tensor::randn(&[dim, dim], &mut rng).scale(0.4),
    ];

    let report = check_gradients(&params, 1e-2, |g, ps| {
        mini_model_loss(g, ps, &item_table, &seq, target)
    });
    assert!(
        report.passed(3e-2),
        "composed gradient check failed: max rel err {} at {:?} over {} elements",
        report.max_rel_error,
        report.worst,
        report.checked
    );
}

#[test]
fn layernorm_plus_linear_composition_gradients() {
    let mut rng = Rng64::seed_from(12);
    let x = Tensor::randn(&[3, 5], &mut rng);
    let ln = LayerNorm::new(5);
    let head = Linear::new(5, 2, true, &mut rng);
    // Perturb the layer parameters through the Param-based modules: verify
    // via loss differences under manual nudges (a coarser but end-to-end
    // check that Session-bound modules backprop into their Params).
    let loss_value = || -> f32 {
        let g = Graph::new();
        let mut sess = Session::eval(&g);
        let xv = g.constant(x.clone());
        let y = ln.forward(&mut sess, xv);
        let z = head.forward(&mut sess, y);
        let t = g.tanh(z);
        g.value(g.sum_all(t)).item()
    };
    // Analytic gradient for one weight element.
    let g = Graph::new();
    let mut sess = Session::eval(&g);
    let xv = g.constant(x.clone());
    let y = ln.forward(&mut sess, xv);
    let z = head.forward(&mut sess, y);
    let t = g.tanh(z);
    let loss = g.sum_all(t);
    g.backward(loss);
    let (param, var) = sess
        .bindings()
        .iter()
        .find(|(p, _)| p.name().contains(".w"))
        .cloned()
        .expect("weight bound");
    let analytic = g.grad(var).unwrap().data()[0];

    let eps = 1e-2;
    let base = param.get();
    let mut plus = base.clone();
    plus.data_mut()[0] += eps;
    param.set(plus);
    let f_plus = loss_value();
    let mut minus = base.clone();
    minus.data_mut()[0] -= eps;
    param.set(minus);
    let f_minus = loss_value();
    param.set(base);

    let numeric = (f_plus - f_minus) / (2.0 * eps);
    let rel = (analytic - numeric).abs() / analytic.abs().max(numeric.abs()).max(1e-3);
    assert!(rel < 3e-2, "analytic {analytic} vs numeric {numeric}");
}
