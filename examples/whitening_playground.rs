//! Whitening playground: inspect what each whitening transform does to an
//! anisotropic embedding matrix — the paper's §III-B analysis as a runnable
//! demo on your own (or synthetic) embeddings.
//!
//! ```sh
//! cargo run --release --example whitening_playground
//! ```

use whitenrec::textsim::{Catalog, CatalogConfig, EmbeddingReport, PlmConfig, PlmEncoder};
use whitenrec::whiten::{
    average_pairwise_cosine, group_whiten, whiteness_error, WhiteningMethod, WhiteningTransform,
    DEFAULT_EPS,
};

fn main() {
    // 1. Generate a catalog and encode it with the simulated PLM.
    let catalog = Catalog::generate(CatalogConfig {
        n_items: 1500,
        ..CatalogConfig::default()
    });
    let encoder = PlmEncoder::new(catalog.config.n_factors, PlmConfig::default());
    let embeddings = encoder.encode(&catalog);
    println!("Sample item text: {:?}", catalog.text_of(0));

    let report = EmbeddingReport::compute(&embeddings, 2000, 1).unwrap();
    println!("\nRaw embeddings: {report}");

    // 2. Whiten with every method and compare.
    println!("\n{:<10} {:>12} {:>12}", "method", "avg cos", "whiteness");
    for method in WhiteningMethod::ALL {
        let z = WhiteningTransform::fit(&embeddings, method, DEFAULT_EPS).apply(&embeddings);
        println!(
            "{:<10} {:>12.4} {:>12.4}",
            method.name(),
            average_pairwise_cosine(&z, 2000, 2),
            whiteness_error(&z)
        );
    }

    // 3. Relaxed (group) whitening: semantics retained vs uniformity.
    println!("\nRelaxed ZCA whitening by group count:");
    println!("{:<8} {:>12} {:>12}", "G", "avg cos", "whiteness");
    for g in [1usize, 4, 16, 64] {
        if embeddings.cols() % g != 0 {
            continue;
        }
        let z = group_whiten(&embeddings, g, WhiteningMethod::Zca, DEFAULT_EPS);
        println!(
            "{:<8} {:>12.4} {:>12.4}",
            g,
            average_pairwise_cosine(&z, 2000, 3),
            whiteness_error(&z)
        );
    }
    println!(
        "\nReading: full ZCA (G=1) drives avg cosine to ~0 and whiteness\n\
         error to ~0; larger G preserves more raw geometry (higher cosine)."
    );
}
