//! Bring-your-own-embeddings: run the WhitenRec stack on an embedding
//! matrix you supply (here: loaded from a synthetic generator standing in
//! for "my BERT export"), without using the dataset presets.
//!
//! Demonstrates the lower-level API: whitening → towers → SasRec → fit →
//! evaluate, the same path `Pipeline` wraps.
//!
//! ```sh
//! cargo run --release --example custom_embeddings
//! ```

use whitenrec::data::{warm_split, Batcher};
use whitenrec::eval::evaluate_cases;
use whitenrec::models::{zoo, EnsembleTower, LossKind, ModelConfig, SasRec};
use whitenrec::tensor::{Rng64, Tensor};
use whitenrec::train::{fit, Adam, AdamConfig, SeqRecModel, TrainConfig};
use whitenrec::whiten::EnsembleMode;

fn main() {
    // --- your data -------------------------------------------------------
    // items: any [n_items, d_t] matrix of pre-trained text embeddings.
    let n_items = 200;
    let mut rng = Rng64::seed_from(99);
    let mut embeddings = Tensor::randn(&[n_items, 64], &mut rng).scale(0.2);
    // ... made anisotropic on purpose, like real PLM output:
    for r in 0..n_items {
        let a = 1.0 + 0.1 * rng.normal();
        embeddings.row_mut(r)[0] += 3.0 * a;
    }
    // interactions: any Vec<Vec<usize>> of chronological item ids. Here a
    // noisy "users walk forward through the catalog" pattern.
    let sequences: Vec<Vec<usize>> = (0..400)
        .map(|u| {
            (0..10)
                .map(|t| (u * 7 + t * 3 + (u + t) % 5) % n_items)
                .collect()
        })
        .collect();

    // --- the WhitenRec+ recipe -------------------------------------------
    let z_full = zoo::whiten_full(&embeddings);
    let z_relaxed = zoo::whiten_relaxed(&embeddings, 4);

    let config = ModelConfig {
        dim: 32,
        max_seq: 12,
        ..ModelConfig::default()
    };
    let mut model_rng = Rng64::seed_from(1);
    let mut model = SasRec::new(
        "WhitenRec+ (custom)",
        Box::new(EnsembleTower::new(
            z_full,
            z_relaxed,
            config.dim,
            config.proj_layers,
            EnsembleMode::Sum,
            &mut model_rng,
        )),
        LossKind::Softmax,
        config,
        &mut model_rng,
    );

    let split = warm_split(&sequences);
    let mut opt = Adam::new(AdamConfig {
        lr: 1e-3,
        ..AdamConfig::default()
    });
    let train_config = TrainConfig {
        max_epochs: 8,
        patience: 3,
        batch_size: 128,
        max_seq: 12,
        ..TrainConfig::default()
    };
    let report = fit(
        &mut model,
        &mut opt,
        split.train.clone(),
        &split.validation,
        train_config,
        |_, rec| println!("epoch {:>2}: loss {:.4}", rec.epoch, rec.train_loss),
    );

    let metrics = evaluate_cases(&split.test, &[10, 20], 128, true, |ctx| model.score(ctx));
    println!("\n{} epochs, best valid N@20 {:.4}", report.epochs.len(), report.best_valid_ndcg);
    println!("test: {metrics}");

    // Batcher is also available directly if you want a custom loop:
    let batcher = Batcher::new(split.train, 64, 12);
    println!("(manual loop would see {} trainable sequences)", batcher.n_sequences());
}
