//! Quickstart: train WhitenRec+ on a small synthetic Arts dataset and print
//! test metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use whitenrec::data::DatasetKind;
use whitenrec::models::ModelConfig;
use whitenrec::{Pipeline, PipelineConfig};

fn main() {
    let config = PipelineConfig {
        dataset: DatasetKind::Arts,
        scale: 0.15,
        model: "WhitenRec+".into(),
        model_config: ModelConfig::default(),
        max_epochs: 10,
        patience: 3,
        cold: false,
        relaxed_groups: 4,
    };
    println!("Training {} on {:?} (scale {})…", config.model, config.dataset, config.scale);
    let result = Pipeline::new(config).run();

    println!("\nTraining curve:");
    for rec in &result.report.epochs {
        println!(
            "  epoch {:>2}: loss {:.4}  valid N@20 {}",
            rec.epoch,
            rec.train_loss,
            rec.valid_ndcg.map(|v| format!("{v:.4}")).unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "\nBest epoch {} | {:.1}s total | {} trainable parameters",
        result.report.best_epoch,
        result.report.total_seconds,
        result.report.param_count
    );
    println!("Test metrics: {}", result.test_metrics);
}
