//! Cold-start scenario (the paper's motivating use case): 15 % of items
//! never appear in training; only their *text* can reach them. Compares a
//! text-only SASRec against WhitenRec+ under that protocol.
//!
//! ```sh
//! cargo run --release --example cold_start
//! ```

use whitenrec::data::DatasetKind;
use whitenrec::models::ModelConfig;
use whitenrec::{Pipeline, PipelineConfig};

fn main() {
    let base = PipelineConfig {
        dataset: DatasetKind::Tools,
        scale: 0.15,
        model_config: ModelConfig::default(),
        max_epochs: 10,
        patience: 3,
        cold: true,
        relaxed_groups: 4,
        model: String::new(),
    };

    println!("Cold-start on Tools: targets are items unseen during training.\n");
    for model in ["SASRec(T)", "WhitenRec", "WhitenRec+"] {
        let result = Pipeline::new(PipelineConfig {
            model: model.into(),
            ..base.clone()
        })
        .run();
        println!(
            "{:<12} {}  ({} cold cases)",
            model, result.test_metrics, result.test_metrics.n_cases
        );
    }
    println!(
        "\nReading: raw text embeddings barely separate unseen items\n\
         (anisotropy), whitening fixes the geometry, and the ensemble adds\n\
         the semantic manifold back — Table IV's ordering."
    );
}
