//! New items arriving after training (the paper's cold-start motivation,
//! as a production workflow): fold fresh item embeddings into an
//! incremental whitening estimate and score them without retraining.
//!
//! ```sh
//! cargo run --release --example incremental_items
//! ```

use whitenrec::textsim::{Catalog, CatalogConfig, PlmConfig, PlmEncoder};
use whitenrec::whiten::{whiteness_error, IncrementalWhitening};

fn main() {
    // Day 0: the existing catalog.
    let catalog = Catalog::generate(CatalogConfig {
        n_items: 1200,
        ..CatalogConfig::default()
    });
    let encoder = PlmEncoder::new(catalog.config.n_factors, PlmConfig::default());
    let embeddings = encoder.encode(&catalog);
    let day0 = embeddings.slice_rows(0, 800);

    let mut moments = IncrementalWhitening::new(embeddings.cols(), 1e-5);
    moments.update(&day0);
    let transform_day0 = moments.transform();
    println!(
        "day 0: fitted on {} items | whiteness of day-0 set: {:.4}",
        moments.count(),
        whiteness_error(&transform_day0.apply(&day0))
    );

    // Days 1..4: batches of new products arrive. Their text embeddings are
    // whitened with the *current* transform immediately (no refit needed),
    // and folded into the moments for the next refresh.
    for (day, range) in [(1, 800..900), (2, 900..1000), (3, 1000..1100), (4, 1100..1200)] {
        let fresh = embeddings.slice_rows(range.start, range.end);
        // Score-path view: whiten the new items with yesterday's transform.
        let z_fresh = moments.transform().apply(&fresh);
        println!(
            "day {day}: {} new items | whiteness under current transform: {:.4}",
            fresh.rows(),
            whiteness_error(&z_fresh)
        );
        moments.update(&fresh);
    }

    // Refit from moments: one d×d eigendecomposition, no pass over the
    // 1200-item history.
    let final_transform = moments.transform();
    println!(
        "\nafter all arrivals ({} items): whiteness of the full catalog {:.4}",
        moments.count(),
        whiteness_error(&final_transform.apply(&embeddings))
    );
    println!(
        "round-trip sanity: coloring the whitened catalog back reconstructs\n\
         the original within {:.2e} relative error",
        {
            let z = final_transform.apply(&embeddings);
            let back = final_transform.uncolor(&z);
            back.sub(&embeddings).frob_norm() / embeddings.frob_norm()
        }
    );
}
